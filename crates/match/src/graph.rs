//! Weighted matching graphs built from detector error models.
//!
//! Nodes are detectors plus one virtual boundary node. Every error mechanism
//! with one flipped detector becomes a boundary edge; two flipped detectors
//! become an interior edge; more than two (hyperedges, which arise from Y
//! errors under circuit-level noise) are decomposed into existing edges in the
//! style of Stim's `decompose_errors`.

use crate::error::ValidationError;
use caliqec_stab::{DetIdx, DetectorErrorModel, ErrorSource, RateTable};
use std::collections::HashMap;

/// Identifier of a node in a [`MatchingGraph`]: a detector or the boundary.
pub type NodeId = usize;

/// One weighted edge of the matching graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Edge {
    /// First endpoint (a detector).
    pub u: NodeId,
    /// Second endpoint (a detector, or [`MatchingGraph::boundary`]).
    pub v: NodeId,
    /// Total firing probability of the mechanisms merged into this edge.
    pub probability: f64,
    /// Matching weight `ln((1 - p) / p)`.
    pub weight: f64,
    /// XOR of logical-observable masks flipped when this edge is used.
    pub observables: u64,
}

/// A weighted matching graph with a single virtual boundary node.
///
/// # Examples
///
/// ```
/// use caliqec_match::MatchingGraph;
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// let graph = MatchingGraph::from_dem(&extract_dem(&c));
/// assert_eq!(graph.num_detectors(), 1);
/// assert_eq!(graph.edges().len(), 1); // one boundary edge
/// ```
#[derive(Clone, Debug, Default)]
pub struct MatchingGraph {
    num_detectors: usize,
    num_observables: usize,
    edges: Vec<Edge>,
    /// CSR adjacency: `adj_edges[adj_offsets[n]..adj_offsets[n + 1]]` are
    /// the indices (into `edges`) of the edges incident to node `n`, in
    /// ascending edge order. Flat so cluster growth and Dijkstra walk
    /// contiguous memory instead of chasing one heap box per node.
    adj_offsets: Vec<u32>,
    adj_edges: Vec<u32>,
    /// Mechanism provenance retained by [`MatchingGraph::from_dem`] so edge
    /// probabilities can be recomputed from updated per-gate rates without
    /// re-extracting the DEM. `None` for [`MatchingGraph::from_edges`]
    /// graphs.
    provenance: Option<Provenance>,
    /// Bumped by every [`MatchingGraph::reweight`]; weight-derived caches
    /// (MWPM Dijkstra cache, predecoder tables) stamp the epoch they were
    /// built against and are stale when it no longer matches.
    weight_epoch: u64,
}

fn probability_to_weight(p: f64) -> f64 {
    let p = p.clamp(MatchingGraph::P_MIN, MatchingGraph::P_MAX);
    ((1.0 - p) / p).ln()
}

fn xor_combine(a: f64, b: f64) -> f64 {
    a * (1.0 - b) + b * (1.0 - a)
}

/// Flattened provenance of a graph built from a DEM: which interned physical
/// sources contribute to each mechanism, and which mechanisms were folded
/// into each edge, both in their exact extraction/absorb order so a replay
/// under the identity rate table is bit-identical to the original build.
#[derive(Clone, Debug, Default)]
struct Provenance {
    /// Interned physical sources, copied from the DEM.
    sources: Vec<ErrorSource>,
    /// CSR over mechanisms: contributions of mechanism `m` occupy
    /// `contrib_*[mech_off[m]..mech_off[m + 1]]`.
    mech_off: Vec<u32>,
    contrib_source: Vec<u32>,
    contrib_base: Vec<f64>,
    contrib_div: Vec<f64>,
    /// CSR over edges: DEM mechanism indices XOR-folded into edge `i`, in
    /// absorb order, occupy `edge_mech[edge_off[i]..edge_off[i + 1]]`.
    edge_off: Vec<u32>,
    edge_mech: Vec<u32>,
}

/// Accumulator for one edge while merging mechanisms.
#[derive(Clone, Debug, Default)]
struct EdgeAcc {
    /// XOR-combined probability of all contributing mechanisms.
    prob: f64,
    /// Observable mask of the edge.
    obs: u64,
    /// Probability of the single strongest mechanism that set `obs`; a
    /// conflicting mechanism only overrides the mask when it is stronger
    /// (its disagreement then becomes bounded decoder noise instead).
    obs_weight: f64,
    /// DEM mechanism indices absorbed into this edge, in absorb order.
    /// Zero-probability mechanisms are skipped: folding 0 is an exact
    /// no-op, and they are frozen under reweighting anyway.
    mechs: Vec<u32>,
}

impl EdgeAcc {
    fn absorb(&mut self, mech: u32, prob: f64, obs: u64) {
        self.prob = xor_combine(self.prob, prob);
        if prob > 0.0 {
            self.mechs.push(mech);
        }
        if obs != self.obs && prob > self.obs_weight {
            self.obs = obs;
            self.obs_weight = prob;
        } else if obs == self.obs {
            self.obs_weight = self.obs_weight.max(prob);
        }
    }
}

impl MatchingGraph {
    /// Builds the matching graph of a detector error model, decomposing
    /// hyperedges into graph edges.
    ///
    /// Observable bookkeeping follows PyMatching/Stim semantics: a
    /// decomposed hyperedge only re-labels an edge when its components'
    /// masks do not already explain the mechanism's observable flips, and
    /// conflicting parallel mechanisms resolve toward the more probable one.
    pub fn from_dem(dem: &DetectorErrorModel) -> MatchingGraph {
        let boundary = dem.num_detectors;
        // First pass: collect genuine edges (1 or 2 detectors).
        let mut edge_map: HashMap<(NodeId, NodeId), EdgeAcc> = HashMap::new();
        let key = |dets: &[DetIdx]| -> Option<(NodeId, NodeId)> {
            match dets {
                [d] => Some((d.0 as NodeId, boundary)),
                [a, b] => Some(ordered(a.0 as NodeId, b.0 as NodeId)),
                _ => None,
            }
        };
        for (mi, mech) in dem.mechanisms.iter().enumerate() {
            if let Some(k) = key(&mech.detectors) {
                edge_map.entry(k).or_default().absorb(
                    mi as u32,
                    mech.probability,
                    mech.observables,
                );
            }
        }
        // Second pass: decompose hyperedges into known edges. The components'
        // existing observable masks usually already explain the hyperedge's
        // flips (e.g. a data Y error = a known X-error edge ⊕ a known
        // Z-error edge); any residual lands on a fresh component.
        for (mi, mech) in dem.mechanisms.iter().enumerate() {
            if mech.detectors.len() <= 2 {
                continue;
            }
            let parts = decompose(&mech.detectors, boundary, &edge_map);
            let mut residual = mech.observables;
            let mut fresh: Option<(NodeId, NodeId)> = None;
            for &part in &parts {
                match edge_map.get(&part) {
                    Some(acc) if acc.prob > 0.0 => residual ^= acc.obs,
                    _ => fresh = fresh.or(Some(part)),
                }
            }
            for &part in &parts {
                let is_fresh_target = fresh == Some(part);
                let entry = edge_map.entry(part).or_default();
                let obs = if is_fresh_target {
                    residual
                } else if entry.prob > 0.0 {
                    entry.obs
                } else {
                    0
                };
                entry.absorb(mi as u32, mech.probability, obs);
            }
            // If every component already existed and their masks do not
            // explain the mechanism (residual != 0 with no fresh edge), the
            // mechanism's logical effect stays as bounded decoder noise —
            // the same compromise PyMatching makes for undecomposable
            // hyperedges.
        }

        let mut keyed: Vec<((NodeId, NodeId), EdgeAcc)> = edge_map
            .into_iter()
            .filter(|(_, acc)| acc.prob > 0.0)
            .collect();
        keyed.sort_by_key(|&((u, v), _)| (u, v));
        let mut edges: Vec<Edge> = Vec::with_capacity(keyed.len());
        let mut edge_off: Vec<u32> = Vec::with_capacity(keyed.len() + 1);
        let mut edge_mech: Vec<u32> = Vec::new();
        edge_off.push(0);
        for ((u, v), acc) in keyed {
            edges.push(Edge {
                u,
                v,
                probability: acc.prob,
                weight: probability_to_weight(acc.prob),
                observables: acc.obs,
            });
            edge_mech.extend_from_slice(&acc.mechs);
            edge_off.push(edge_mech.len() as u32);
        }

        // Flatten the per-mechanism source contributions into a CSR aligned
        // with `dem.mechanisms`.
        let mut mech_off: Vec<u32> = Vec::with_capacity(dem.mechanisms.len() + 1);
        let mut contrib_source: Vec<u32> = Vec::new();
        let mut contrib_base: Vec<f64> = Vec::new();
        let mut contrib_div: Vec<f64> = Vec::new();
        mech_off.push(0);
        for mech in &dem.mechanisms {
            for c in &mech.sources {
                contrib_source.push(c.source);
                contrib_base.push(c.base);
                contrib_div.push(c.divisor);
            }
            mech_off.push(contrib_source.len() as u32);
        }
        let provenance = Provenance {
            sources: dem.sources.clone(),
            mech_off,
            contrib_source,
            contrib_base,
            contrib_div,
            edge_off,
            edge_mech,
        };

        // Two-pass CSR build: count degrees, prefix-sum into offsets, fill.
        // Edges are visited in ascending index order, so each node's
        // incidence list comes out ascending — the same order the old
        // `Vec<Vec<usize>>` adjacency produced.
        let num_nodes = dem.num_detectors + 1;
        let mut degree = vec![0u32; num_nodes];
        for e in &edges {
            degree[e.u] += 1;
            if e.v != e.u {
                degree[e.v] += 1;
            }
        }
        let mut adj_offsets = vec![0u32; num_nodes + 1];
        for n in 0..num_nodes {
            adj_offsets[n + 1] = adj_offsets[n] + degree[n];
        }
        let mut cursor = adj_offsets.clone();
        let mut adj_edges = vec![0u32; adj_offsets[num_nodes] as usize];
        for (i, e) in edges.iter().enumerate() {
            adj_edges[cursor[e.u] as usize] = i as u32;
            cursor[e.u] += 1;
            if e.v != e.u {
                adj_edges[cursor[e.v] as usize] = i as u32;
                cursor[e.v] += 1;
            }
        }
        MatchingGraph {
            num_detectors: dem.num_detectors,
            num_observables: dem.num_observables,
            edges,
            adj_offsets,
            adj_edges,
            provenance: Some(provenance),
            weight_epoch: 0,
        }
    }

    /// Builds a graph directly from an edge list **without** invariant
    /// checks, recomputing the CSR adjacency.
    ///
    /// Unlike [`MatchingGraph::from_dem`] this can represent malformed
    /// graphs (out-of-range endpoints are skipped during the CSR build so
    /// construction itself cannot panic) — the intended pairing is
    /// [`MatchingGraph::validate`], which reports every defect as a typed
    /// [`ValidationError`]. Fault-injection tests and external graph
    /// sources construct graphs this way.
    pub fn from_edges(
        num_detectors: usize,
        num_observables: usize,
        edges: Vec<Edge>,
    ) -> MatchingGraph {
        let num_nodes = num_detectors + 1;
        let mut degree = vec![0u32; num_nodes];
        for e in &edges {
            if e.u < num_nodes {
                degree[e.u] += 1;
            }
            if e.v != e.u && e.v < num_nodes {
                degree[e.v] += 1;
            }
        }
        let mut adj_offsets = vec![0u32; num_nodes + 1];
        for n in 0..num_nodes {
            adj_offsets[n + 1] = adj_offsets[n] + degree[n];
        }
        let mut cursor = adj_offsets.clone();
        let mut adj_edges = vec![0u32; adj_offsets[num_nodes] as usize];
        for (i, e) in edges.iter().enumerate() {
            if e.u < num_nodes {
                adj_edges[cursor[e.u] as usize] = i as u32;
                cursor[e.u] += 1;
            }
            if e.v != e.u && e.v < num_nodes {
                adj_edges[cursor[e.v] as usize] = i as u32;
                cursor[e.v] += 1;
            }
        }
        MatchingGraph {
            num_detectors,
            num_observables,
            edges,
            adj_offsets,
            adj_edges,
            provenance: None,
            weight_epoch: 0,
        }
    }

    /// Re-checks every invariant the decoders rely on, returning the first
    /// defect as a typed [`ValidationError`]:
    ///
    /// - every edge endpoint is a detector or the boundary;
    /// - every edge weight is finite and non-negative, every probability a
    ///   finite number in `(0, 1]`;
    /// - the CSR adjacency agrees with the edge list (monotone offsets, one
    ///   slot per distinct endpoint, incidence entries point at incident
    ///   edges);
    /// - every edge-bearing detector node can reach the boundary, so any
    ///   single defect is matchable.
    ///
    /// [`MatchingGraph::from_dem`] only produces valid graphs; graphs from
    /// [`MatchingGraph::from_edges`] or mutated by fault injection may not
    /// be, and the hardened engine validates before launching workers.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let num_nodes = self.num_nodes();
        for (i, e) in self.edges.iter().enumerate() {
            for node in [e.u, e.v] {
                if node >= num_nodes {
                    return Err(ValidationError::EndpointOutOfRange {
                        edge: i,
                        node,
                        num_nodes,
                    });
                }
            }
            if !e.weight.is_finite() {
                return Err(ValidationError::NonFiniteWeight {
                    edge: i,
                    weight: e.weight,
                });
            }
            if e.weight < 0.0 {
                return Err(ValidationError::NegativeWeight {
                    edge: i,
                    weight: e.weight,
                });
            }
            if !e.probability.is_finite() || e.probability <= 0.0 || e.probability > 1.0 {
                return Err(ValidationError::BadProbability {
                    edge: i,
                    probability: e.probability,
                });
            }
        }
        self.validate_csr()?;
        // BFS from the boundary: every edge-bearing detector must be
        // reachable, or a single defect there could never be matched.
        let mut reached = vec![false; num_nodes];
        let mut queue = vec![self.boundary()];
        reached[self.boundary()] = true;
        while let Some(node) = queue.pop() {
            for &ei in self.incident(node) {
                let other = self.other_endpoint(ei as usize, node);
                if !reached[other] {
                    reached[other] = true;
                    queue.push(other);
                }
            }
        }
        for (node, seen) in reached.iter().enumerate().take(self.num_detectors) {
            if !seen && !self.incident(node).is_empty() {
                return Err(ValidationError::Unreachable { node });
            }
        }
        Ok(())
    }

    /// Checks the CSR adjacency against the edge list.
    fn validate_csr(&self) -> Result<(), ValidationError> {
        let num_nodes = self.num_nodes();
        if self.adj_offsets.len() != num_nodes + 1
            || self.adj_offsets.first() != Some(&0)
            || self.adj_offsets.windows(2).any(|w| w[0] > w[1])
            || self.adj_offsets.last().copied().unwrap_or(0) as usize != self.adj_edges.len()
        {
            return Err(ValidationError::CsrInconsistent {
                detail: format!(
                    "offsets malformed ({} nodes, {} slots)",
                    num_nodes,
                    self.adj_edges.len()
                ),
            });
        }
        let expected_slots: usize = self
            .edges
            .iter()
            .map(|e| if e.u == e.v { 1 } else { 2 })
            .sum();
        if self.adj_edges.len() != expected_slots {
            return Err(ValidationError::CsrInconsistent {
                detail: format!(
                    "{} incidence slots for {} expected endpoint slots",
                    self.adj_edges.len(),
                    expected_slots
                ),
            });
        }
        for node in 0..num_nodes {
            for &ei in self.incident(node) {
                let incident_to_node = self
                    .edges
                    .get(ei as usize)
                    .is_some_and(|e| e.u == node || e.v == node);
                if !incident_to_node {
                    return Err(ValidationError::CsrInconsistent {
                        detail: format!("node {node} lists non-incident edge {ei}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Probability floor for weight conversion. Drift can push a rate toward
    /// zero, whose weight would be `+inf`; `probability_to_weight` clamps to
    /// `[P_MIN, P_MAX]` so every edge weight stays finite. Matches
    /// [`RateTable::MIN_RATE`].
    pub const P_MIN: f64 = 1e-12;
    /// Probability ceiling for weight conversion. Merged probabilities past
    /// the zero-information point 0.5 would produce negative weights;
    /// clamping caps them at weight 0. Matches [`RateTable::MAX_RATE`].
    pub const P_MAX: f64 = 0.5;

    /// Recomputes every edge probability and weight from updated per-gate
    /// `rates`, in place, on the existing CSR layout.
    ///
    /// Topology (edge list, endpoints, adjacency) and observable masks are
    /// untouched, so [`MatchingGraph::validate`] stays cheap and decoders
    /// keyed on structure need no rebuild. The computation replays the
    /// extraction-time XOR folds from the retained provenance: sources
    /// absent from `rates` keep their recorded base component, which makes
    /// the [`RateTable::identity`] reweight bit-identical to the original
    /// build, and a reweight equal to a fresh
    /// `MatchingGraph::from_dem(&dem.reweighted(rates))` bit-identical in
    /// probability and weight.
    ///
    /// Bumps [`MatchingGraph::weight_epoch`]; weight-derived state (the MWPM
    /// Dijkstra cache, the predecoder's potential and near tables) must be
    /// invalidated — decoders wrapping a graph expose their own `reweight`
    /// hooks that do so.
    ///
    /// Errors with [`ValidationError::NoProvenance`] on graphs built by
    /// [`MatchingGraph::from_edges`], which carry no provenance.
    pub fn reweight(&mut self, rates: &RateTable) -> Result<(), ValidationError> {
        let prov = self
            .provenance
            .as_ref()
            .ok_or(ValidationError::NoProvenance)?;
        // Resolve each interned source once.
        let resolved: Vec<Option<f64>> = prov.sources.iter().map(|s| rates.get(s)).collect();
        // Replay the extraction-time contribution fold per mechanism.
        let num_mechs = prov.mech_off.len() - 1;
        let mut mech_prob = vec![0.0f64; num_mechs];
        for (m, out) in mech_prob.iter_mut().enumerate() {
            let lo = prov.mech_off[m] as usize;
            let hi = prov.mech_off[m + 1] as usize;
            let mut acc = 0.0f64;
            for c in lo..hi {
                let p = match resolved[prov.contrib_source[c] as usize] {
                    Some(rate) => rate / prov.contrib_div[c],
                    None => prov.contrib_base[c],
                };
                acc = acc * (1.0 - p) + p * (1.0 - acc);
            }
            *out = acc;
        }
        // Replay the per-edge absorb fold.
        for (i, e) in self.edges.iter_mut().enumerate() {
            let lo = prov.edge_off[i] as usize;
            let hi = prov.edge_off[i + 1] as usize;
            let mut acc = 0.0f64;
            for &m in &prov.edge_mech[lo..hi] {
                acc = xor_combine(acc, mech_prob[m as usize]);
            }
            e.probability = acc;
            e.weight = probability_to_weight(acc);
        }
        self.weight_epoch += 1;
        Ok(())
    }

    /// True when the graph retains the DEM provenance needed by
    /// [`MatchingGraph::reweight`].
    pub fn has_provenance(&self) -> bool {
        self.provenance.is_some()
    }

    /// Monotone counter of in-place reweights. Weight-derived caches stamp
    /// the epoch they were built against; a mismatch means they are stale.
    pub fn weight_epoch(&self) -> u64 {
        self.weight_epoch
    }

    /// Number of detector nodes.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables tracked on edges.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// The virtual boundary node id.
    pub fn boundary(&self) -> NodeId {
        self.num_detectors
    }

    /// Total number of nodes (detectors + boundary).
    pub fn num_nodes(&self) -> usize {
        self.num_detectors + 1
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Indices (into [`Self::edges`]) of the edges incident to `node`, in
    /// ascending edge order. A contiguous CSR slice, cheap to walk.
    #[inline]
    pub fn incident(&self, node: NodeId) -> &[u32] {
        let lo = self.adj_offsets[node] as usize;
        let hi = self.adj_offsets[node + 1] as usize;
        &self.adj_edges[lo..hi]
    }

    /// The endpoint of edge `e` opposite to `node`.
    pub fn other_endpoint(&self, e: usize, node: NodeId) -> NodeId {
        let edge = &self.edges[e];
        if edge.u == node {
            edge.v
        } else {
            edge.u
        }
    }
}

/// Decomposes a hyperedge's detector set into node pairs, preferring splits
/// that correspond to existing edges.
fn decompose(
    dets: &[DetIdx],
    boundary: NodeId,
    known: &HashMap<(NodeId, NodeId), EdgeAcc>,
) -> Vec<(NodeId, NodeId)> {
    let mut remaining: Vec<NodeId> = dets.iter().map(|d| d.0 as NodeId).collect();
    let mut parts = Vec::new();
    // Greedily extract pairs that are known edges.
    'outer: loop {
        for i in 0..remaining.len() {
            for j in (i + 1)..remaining.len() {
                let k = ordered(remaining[i], remaining[j]);
                if known.contains_key(&k) {
                    parts.push(k);
                    remaining.swap_remove(j);
                    remaining.swap_remove(i);
                    continue 'outer;
                }
            }
        }
        break;
    }
    // Extract singles that are known boundary edges.
    let mut i = 0;
    while i < remaining.len() {
        let k = ordered(remaining[i], boundary);
        if known.contains_key(&k) {
            parts.push(k);
            remaining.swap_remove(i);
        } else {
            i += 1;
        }
    }
    // Whatever is left: pair arbitrarily, odd one goes to the boundary.
    while remaining.len() >= 2 {
        let a = remaining.pop().expect("len >= 2");
        let b = remaining.pop().expect("len >= 1");
        parts.push(ordered(a, b));
    }
    if let Some(a) = remaining.pop() {
        parts.push(ordered(a, boundary));
    }
    parts
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliqec_stab::{extract_dem, Basis, Circuit, Noise1, Noise2};

    fn chain_circuit(p: f64) -> Circuit {
        // Three data qubits measured through two parity checks; X errors on
        // the middle qubit light both checks -> interior edge; on the outer
        // qubits -> boundary edges.
        let mut c = Circuit::new(5);
        let (d0, d1, d2, a0, a1) = (0, 1, 2, 3, 4);
        c.reset(Basis::Z, &[d0, d1, d2, a0, a1]);
        c.noise1(Noise1::XError, p, &[d0, d1, d2]);
        c.cx(d0, a0);
        c.cx(d1, a0);
        c.cx(d1, a1);
        c.cx(d2, a1);
        let m0 = c.measure(a0, Basis::Z, 0.0);
        let m1 = c.measure(a1, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        let md = c.measure(d0, Basis::Z, 0.0);
        c.observable(0, &[md]);
        c
    }

    #[test]
    fn chain_graph_structure() {
        let g = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
        assert_eq!(g.num_detectors(), 2);
        assert_eq!(g.edges().len(), 3);
        let boundary_edges = g.edges().iter().filter(|e| e.v == g.boundary()).count();
        assert_eq!(boundary_edges, 2);
    }

    #[test]
    fn observable_mask_sits_on_d0_boundary_edge() {
        let g = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
        let e = g
            .edges()
            .iter()
            .find(|e| e.u == 0 && e.v == g.boundary())
            .expect("boundary edge for detector 0");
        assert_eq!(e.observables, 1);
    }

    #[test]
    fn weights_decrease_with_probability() {
        assert!(probability_to_weight(0.001) > probability_to_weight(0.01));
        assert!(probability_to_weight(0.01) > probability_to_weight(0.1));
    }

    #[test]
    fn weight_conversion_clamps_low_edge() {
        // p -> 0 would be an infinite weight; the floor keeps it finite and
        // saturated at the P_MIN weight.
        let floor = probability_to_weight(MatchingGraph::P_MIN);
        assert!(floor.is_finite() && floor > 0.0);
        assert_eq!(probability_to_weight(0.0).to_bits(), floor.to_bits());
        assert_eq!(probability_to_weight(1e-300).to_bits(), floor.to_bits());
        assert_eq!(probability_to_weight(-0.1).to_bits(), floor.to_bits());
    }

    #[test]
    fn weight_conversion_clamps_high_edge() {
        // Merged p past 0.5 would go negative; the ceiling caps at weight 0.
        assert_eq!(probability_to_weight(MatchingGraph::P_MAX), 0.0);
        assert_eq!(probability_to_weight(0.9), 0.0);
        assert_eq!(probability_to_weight(1.0), 0.0);
    }

    #[test]
    fn identity_reweight_is_bit_identical_and_bumps_epoch() {
        let g0 = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
        let mut g = g0.clone();
        assert!(g.has_provenance());
        assert_eq!(g.weight_epoch(), 0);
        g.reweight(&RateTable::identity()).unwrap();
        assert_eq!(g.weight_epoch(), 1);
        for (a, b) in g0.edges().iter().zip(g.edges()) {
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn reweight_matches_fresh_rebuild() {
        let dem = extract_dem(&chain_circuit(0.01));
        let rates = RateTable::uniform(0.05);
        let mut incremental = MatchingGraph::from_dem(&dem);
        incremental.reweight(&rates).unwrap();
        let fresh = MatchingGraph::from_dem(&dem.reweighted(&rates));
        assert_eq!(incremental.edges().len(), fresh.edges().len());
        for (a, b) in incremental.edges().iter().zip(fresh.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn reweight_at_extreme_rates_still_validates() {
        // Legally-drifted rates are clamped to [MIN_RATE, MAX_RATE]; even the
        // extremes must leave a graph that passes validation.
        for rate in [0.0, 1e-30, 0.5, 1.0, f64::INFINITY] {
            let mut g = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
            g.reweight(&RateTable::uniform(rate)).unwrap();
            g.validate().unwrap();
        }
    }

    #[test]
    fn reweight_without_provenance_is_rejected() {
        let src = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
        let mut g = MatchingGraph::from_edges(
            src.num_detectors(),
            src.num_observables(),
            src.edges().to_vec(),
        );
        assert!(!g.has_provenance());
        assert_eq!(
            g.reweight(&RateTable::identity()),
            Err(ValidationError::NoProvenance)
        );
    }

    #[test]
    fn xor_combine_is_symmetric_and_bounded() {
        let c = xor_combine(0.1, 0.2);
        assert!((c - (0.1 * 0.8 + 0.2 * 0.9)).abs() < 1e-12);
        assert_eq!(xor_combine(0.0, 0.3), 0.3);
    }

    #[test]
    fn hyperedges_are_decomposed() {
        // A depolarizing error between two ancilla-coupled qubits can flip
        // 3 detectors at once; the graph must still only contain pair edges.
        let mut c = Circuit::new(3);
        c.reset(Basis::Z, &[0, 1, 2]);
        c.noise2(Noise2::Depolarize2, 0.01, &[(0, 1)]);
        c.cx(0, 2);
        let m0 = c.measure(0, Basis::Z, 0.0);
        let m1 = c.measure(1, Basis::Z, 0.0);
        let m2 = c.measure(2, Basis::Z, 0.0);
        c.detector(&[m0]);
        c.detector(&[m1]);
        c.detector(&[m2]);
        let dem = extract_dem(&c);
        let g = MatchingGraph::from_dem(&dem);
        for e in g.edges() {
            assert!(e.u < g.num_nodes() && e.v < g.num_nodes());
            assert!(e.probability > 0.0 && e.probability < 1.0);
        }
    }

    #[test]
    fn validate_accepts_dem_graphs() {
        let g = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
        assert!(g.validate().is_ok());
    }

    fn edge(u: NodeId, v: NodeId, probability: f64, weight: f64) -> Edge {
        Edge {
            u,
            v,
            probability,
            weight,
            observables: 0,
        }
    }

    #[test]
    fn validate_catches_malformed_graphs() {
        use crate::error::ValidationError;

        // Endpoint past the boundary.
        let g = MatchingGraph::from_edges(2, 1, vec![edge(0, 7, 0.01, 1.0)]);
        assert!(matches!(
            g.validate(),
            Err(ValidationError::EndpointOutOfRange { node: 7, .. })
        ));

        // NaN weight.
        let g = MatchingGraph::from_edges(2, 1, vec![edge(0, 2, 0.01, f64::NAN)]);
        assert!(matches!(
            g.validate(),
            Err(ValidationError::NonFiniteWeight { .. })
        ));

        // Negative weight.
        let g = MatchingGraph::from_edges(2, 1, vec![edge(0, 2, 0.01, -3.0)]);
        assert!(matches!(
            g.validate(),
            Err(ValidationError::NegativeWeight { .. })
        ));

        // Probability outside (0, 1].
        let g = MatchingGraph::from_edges(2, 1, vec![edge(0, 2, 0.0, 1.0)]);
        assert!(matches!(
            g.validate(),
            Err(ValidationError::BadProbability { .. })
        ));

        // Node 0–1 component stranded away from the boundary (node 2).
        let g = MatchingGraph::from_edges(2, 1, vec![edge(0, 1, 0.01, 1.0)]);
        assert!(matches!(
            g.validate(),
            Err(ValidationError::Unreachable { node: 0 })
        ));

        // Edge-free detectors are fine — they can never fire.
        let g = MatchingGraph::from_edges(3, 1, vec![edge(0, 3, 0.01, 1.0)]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn from_edges_matches_from_dem_adjacency() {
        let g = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
        let rebuilt =
            MatchingGraph::from_edges(g.num_detectors(), g.num_observables(), g.edges().to_vec());
        assert!(rebuilt.validate().is_ok());
        for node in 0..g.num_nodes() {
            assert_eq!(g.incident(node), rebuilt.incident(node));
        }
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = MatchingGraph::from_dem(&extract_dem(&chain_circuit(0.01)));
        let mut slots = 0usize;
        for node in 0..g.num_nodes() {
            let incident = g.incident(node);
            // CSR incidence lists are ascending (matching edge sort order).
            assert!(incident.windows(2).all(|w| w[0] < w[1]));
            for &ei in incident {
                let e = &g.edges()[ei as usize];
                assert!(e.u == node || e.v == node);
                slots += 1;
            }
        }
        // Every edge occupies exactly one slot per distinct endpoint.
        let expected: usize = g
            .edges()
            .iter()
            .map(|e| if e.u == e.v { 1 } else { 2 })
            .sum();
        assert_eq!(slots, expected);
    }
}
