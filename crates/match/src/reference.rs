//! Reference decoder implementations, preserved for benchmarking and
//! cross-validation.
//!
//! [`ReferenceUnionFind`] is the pre-optimization union-find decoder: it
//! allocates its growth-phase bookkeeping (root list, per-edge growth-rate
//! map) and its entire peeling forest (graph-sized adjacency, visit marks,
//! BFS order) on every call. The production [`crate::UnionFindDecoder`] must
//! produce bit-identical corrections while doing all of that in reused,
//! dirty-list-cleaned scratch; tests and Criterion benches compare the two.

use crate::decode::Decoder;
use crate::graph::{MatchingGraph, NodeId};

/// The historic allocate-per-call union-find decoder (see module docs).
///
/// # Examples
///
/// ```
/// use caliqec_match::{Decoder, MatchingGraph, ReferenceUnionFind};
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
/// let graph = MatchingGraph::from_dem(&extract_dem(&c));
/// let mut dec = ReferenceUnionFind::new(graph);
/// assert_eq!(dec.decode(&[0]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceUnionFind {
    graph: MatchingGraph,
    parent: Vec<NodeId>,
    parity: Vec<bool>,
    has_boundary: Vec<bool>,
    members: Vec<Vec<NodeId>>,
    growth: Vec<f64>,
    defect: Vec<bool>,
    dirty_nodes: Vec<NodeId>,
    dirty_edges: Vec<usize>,
}

impl ReferenceUnionFind {
    /// Validating constructor: rejects a malformed graph with a typed
    /// error, mirroring [`crate::UnionFindDecoder::try_new`].
    pub fn try_new(
        graph: MatchingGraph,
    ) -> Result<ReferenceUnionFind, crate::error::ValidationError> {
        graph.validate()?;
        Ok(ReferenceUnionFind::new(graph))
    }

    /// Creates a decoder owning its matching graph.
    pub fn new(graph: MatchingGraph) -> ReferenceUnionFind {
        let n = graph.num_nodes();
        let e = graph.edges().len();
        let boundary = graph.boundary();
        let mut has_boundary = vec![false; n];
        has_boundary[boundary] = true;
        ReferenceUnionFind {
            graph,
            parent: (0..n).collect(),
            parity: vec![false; n],
            has_boundary,
            members: (0..n).map(|i| vec![i]).collect(),
            growth: vec![0.0; e],
            defect: vec![false; n],
            dirty_nodes: Vec::new(),
            dirty_edges: Vec::new(),
        }
    }

    /// The underlying matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    fn find(&mut self, mut a: NodeId) -> NodeId {
        while self.parent[a] != a {
            self.parent[a] = self.parent[self.parent[a]];
            a = self.parent[a];
        }
        a
    }

    fn union(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        self.dirty_nodes.push(ra);
        self.dirty_nodes.push(rb);
        // Small-to-large member merging.
        let (big, small) = if self.members[ra].len() >= self.members[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        let moved = std::mem::take(&mut self.members[small]);
        self.members[big].extend(moved);
        let p = self.parity[small];
        self.parity[big] ^= p;
        let hb = self.has_boundary[small];
        self.has_boundary[big] |= hb;
        big
    }

    fn cleanup(&mut self) {
        let boundary = self.graph.boundary();
        for i in 0..self.dirty_nodes.len() {
            let n = self.dirty_nodes[i];
            self.parent[n] = n;
            self.parity[n] = false;
            self.has_boundary[n] = n == boundary;
            self.members[n].clear();
            self.members[n].push(n);
            self.defect[n] = false;
        }
        self.dirty_nodes.clear();
        for i in 0..self.dirty_edges.len() {
            self.growth[self.dirty_edges[i]] = 0.0;
        }
        self.dirty_edges.clear();
    }

    fn is_active(&self, r: NodeId) -> bool {
        self.parity[r] && !self.has_boundary[r]
    }

    fn grow_clusters(&mut self, defects: &[NodeId]) -> Vec<usize> {
        for &d in defects {
            self.defect[d] = true;
            self.parity[d] = true;
            self.dirty_nodes.push(d);
        }
        loop {
            let mut roots: Vec<NodeId> = Vec::new();
            for &d in defects {
                let r = self.find(d);
                if self.is_active(r) {
                    roots.push(r);
                }
            }
            if roots.is_empty() {
                break;
            }
            let mut seen_root = vec![];
            let mut frontier: Vec<(usize, f64)> = Vec::new();
            let mut rate: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &r in &roots {
                if seen_root.contains(&r) {
                    continue;
                }
                seen_root.push(r);
                let members = self.members[r].clone();
                for node in members {
                    for &ei in self.graph.incident(node) {
                        let ei = ei as usize;
                        let e = &self.graph.edges()[ei];
                        if self.growth[ei] >= e.weight {
                            continue;
                        }
                        *rate.entry(ei).or_insert(0.0) += 1.0;
                    }
                }
            }
            let mut delta = f64::INFINITY;
            for (&ei, &rt) in &rate {
                let slack = self.graph.edges()[ei].weight - self.growth[ei];
                delta = delta.min(slack / rt);
            }
            if !delta.is_finite() {
                for &r in &roots {
                    let rr = self.find(r);
                    self.has_boundary[rr] = true;
                    self.dirty_nodes.push(rr);
                }
                break;
            }
            frontier.extend(rate.iter().map(|(&e, &r)| (e, r)));
            for (ei, rt) in frontier {
                if self.growth[ei] == 0.0 {
                    self.dirty_edges.push(ei);
                }
                self.growth[ei] += delta * rt;
                let e = &self.graph.edges()[ei];
                if self.growth[ei] >= e.weight - 1e-12 {
                    self.growth[ei] = e.weight;
                    let (u, v) = (e.u, e.v);
                    self.dirty_nodes.push(u);
                    self.dirty_nodes.push(v);
                    self.union(u, v);
                }
            }
        }
        let mut grown: Vec<usize> = self
            .dirty_edges
            .iter()
            .copied()
            .filter(|&ei| self.growth[ei] >= self.graph.edges()[ei].weight)
            .collect();
        grown.sort_unstable();
        grown
    }

    fn peel(&mut self, grown: &[usize]) -> u64 {
        let n = self.graph.num_nodes();
        // Full graph-sized adjacency / visit marks, allocated per call —
        // the cost the production decoder removes.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &ei in grown {
            let e = &self.graph.edges()[ei];
            adj[e.u].push(ei);
            adj[e.v].push(ei);
        }
        let boundary = self.graph.boundary();
        let mut visited = vec![false; n];
        let mut correction = 0u64;

        let mut order: Vec<(NodeId, Option<usize>)> = Vec::new();
        let component =
            |start: NodeId, visited: &mut Vec<bool>, order: &mut Vec<(NodeId, Option<usize>)>| {
                let base = order.len();
                visited[start] = true;
                order.push((start, None));
                let mut head = base;
                while head < order.len() {
                    let (node, _) = order[head];
                    head += 1;
                    for &ei in &adj[node] {
                        let other = self.graph.other_endpoint(ei, node);
                        if !visited[other] {
                            visited[other] = true;
                            order.push((other, Some(ei)));
                        }
                    }
                }
            };

        component(boundary, &mut visited, &mut order);
        for start in 0..n {
            if !visited[start] {
                component(start, &mut visited, &mut order);
            }
        }
        for i in (0..order.len()).rev() {
            let (node, parent_edge) = order[i];
            if !self.defect[node] {
                continue;
            }
            let Some(ei) = parent_edge else {
                debug_assert!(node == boundary, "non-boundary root retained defect parity");
                continue;
            };
            let e = &self.graph.edges()[ei];
            correction ^= e.observables;
            let parent = self.graph.other_endpoint(ei, node);
            self.defect[node] = false;
            self.defect[parent] ^= true;
        }
        correction
    }
}

impl Decoder for ReferenceUnionFind {
    fn decode(&mut self, defects: &[NodeId]) -> u64 {
        if defects.is_empty() {
            return 0;
        }
        let grown = self.grow_clusters(defects);
        let correction = self.peel(&grown);
        self.cleanup();
        correction
    }
}
