//! Typed errors for graph validation and hardened engine runs.
//!
//! [`ValidationError`] reports structural defects in a
//! [`MatchingGraph`](crate::MatchingGraph) — non-finite or negative weights,
//! CSR inconsistencies, nodes that cannot reach the boundary — found by
//! [`MatchingGraph::validate`](crate::MatchingGraph::validate).
//! [`EngineError`] is what the fallible engine entry points
//! ([`LerEngine::try_estimate`](crate::LerEngine::try_estimate) and friends)
//! return: an input-validation failure, or a chunk that exhausted the
//! decoder degradation ladder at run time.

use crate::graph::NodeId;
use caliqec_stab::CircuitError;
use std::fmt;

/// A structural defect found while validating a
/// [`MatchingGraph`](crate::MatchingGraph).
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// An edge endpoint is not a detector or the boundary node.
    EndpointOutOfRange {
        /// Index of the offending edge.
        edge: usize,
        /// The out-of-range endpoint.
        node: NodeId,
        /// Total node count (detectors + boundary).
        num_nodes: usize,
    },
    /// An edge weight is NaN or infinite.
    NonFiniteWeight {
        /// Index of the offending edge.
        edge: usize,
        /// The offending weight.
        weight: f64,
    },
    /// An edge weight is negative (matching requires non-negative costs).
    NegativeWeight {
        /// Index of the offending edge.
        edge: usize,
        /// The offending weight.
        weight: f64,
    },
    /// An edge probability is not a finite number in `(0, 1)`.
    BadProbability {
        /// Index of the offending edge.
        edge: usize,
        /// The offending probability.
        probability: f64,
    },
    /// The CSR adjacency disagrees with the edge list (offsets non-monotone,
    /// slot counts wrong, or an incidence entry pointing at a non-incident
    /// edge).
    CsrInconsistent {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A detector node carries edges but has no path to the boundary, so a
    /// single defect there could never be matched.
    Unreachable {
        /// The stranded node.
        node: NodeId,
    },
    /// The graph carries no DEM provenance, so
    /// [`MatchingGraph::reweight`](crate::MatchingGraph::reweight) cannot
    /// recompute its probabilities. Graphs built by
    /// [`MatchingGraph::from_edges`](crate::MatchingGraph::from_edges) are in
    /// this state.
    NoProvenance,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EndpointOutOfRange {
                edge,
                node,
                num_nodes,
            } => write!(
                f,
                "edge {edge} endpoint {node} out of range (graph has {num_nodes} nodes)"
            ),
            ValidationError::NonFiniteWeight { edge, weight } => {
                write!(f, "edge {edge} has non-finite weight {weight}")
            }
            ValidationError::NegativeWeight { edge, weight } => {
                write!(f, "edge {edge} has negative weight {weight}")
            }
            ValidationError::BadProbability { edge, probability } => {
                write!(f, "edge {edge} has bad probability {probability}")
            }
            ValidationError::CsrInconsistent { detail } => {
                write!(f, "adjacency inconsistent with edge list: {detail}")
            }
            ValidationError::Unreachable { node } => {
                write!(f, "node {node} has edges but cannot reach the boundary")
            }
            ValidationError::NoProvenance => {
                write!(f, "graph carries no DEM provenance; cannot reweight")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// A failure of a hardened engine run: invalid inputs rejected up front, or
/// a chunk whose decode faulted on every rung of the degradation ladder.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The compiled circuit failed validation.
    Circuit(CircuitError),
    /// The decoder factory's matching graph failed validation.
    Graph(ValidationError),
    /// One chunk faulted on every rung of the degradation ladder; `reason`
    /// is the last rung's fault description.
    ChunkFailed {
        /// Index of the failed chunk.
        chunk: usize,
        /// Last ladder rung attempted (0-based).
        rung: usize,
        /// Description of the final fault.
        reason: String,
    },
    /// Malformed run options (e.g. a non-finite or sub-unit importance
    /// boost factor) rejected before any sampling.
    Options {
        /// Description of the rejected option.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Circuit(e) => write!(f, "invalid circuit: {e}"),
            EngineError::Graph(e) => write!(f, "invalid matching graph: {e}"),
            EngineError::ChunkFailed {
                chunk,
                rung,
                reason,
            } => write!(
                f,
                "chunk {chunk} failed on every degradation rung (last rung {rung}): {reason}"
            ),
            EngineError::Options { detail } => write!(f, "invalid run options: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Circuit(e) => Some(e),
            EngineError::Graph(e) => Some(e),
            EngineError::ChunkFailed { .. } | EngineError::Options { .. } => None,
        }
    }
}

impl From<CircuitError> for EngineError {
    fn from(e: CircuitError) -> EngineError {
        EngineError::Circuit(e)
    }
}

impl From<ValidationError> for EngineError {
    fn from(e: ValidationError) -> EngineError {
        EngineError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_and_convert() {
        let v = ValidationError::NegativeWeight {
            edge: 3,
            weight: -1.0,
        };
        assert!(v.to_string().contains("edge 3"));
        let e: EngineError = v.into();
        assert!(matches!(e, EngineError::Graph(_)));
        assert!(e.to_string().contains("invalid matching graph"));

        let e: EngineError = CircuitError::TooManyObservables {
            num_observables: 99,
        }
        .into();
        assert!(e.to_string().contains("invalid circuit"));

        let e = EngineError::ChunkFailed {
            chunk: 4,
            rung: 2,
            reason: "injected panic".into(),
        };
        assert!(e.to_string().contains("chunk 4"));
    }
}
