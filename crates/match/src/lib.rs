//! # caliqec-match — decoding substrate
//!
//! Syndrome decoders for surface-code experiments, replacing PyMatching in
//! the paper's toolchain:
//!
//! - [`MatchingGraph`]: a weighted matching graph with a virtual boundary,
//!   built from a [`caliqec_stab::DetectorErrorModel`] (hyperedges are
//!   decomposed into graph edges).
//! - [`UnionFindDecoder`]: the weighted union-find decoder
//!   (Delfosse–Nickerson), near-linear time, the primary Monte-Carlo decoder.
//! - [`MwpmDecoder`]: exact minimum-weight perfect matching for small defect
//!   sets (bitmask DP) with a greedy fallback — the oracle decoder. Caches
//!   per-source shortest-path trees and early-terminates Dijkstra runs;
//!   [`MwpmDecoder::without_cache`] restores the historic behavior.
//! - [`ReferenceUnionFind`]: the pre-optimization allocate-per-call
//!   union-find decoder, kept as a bit-identical reference for benches and
//!   cross-validation.
//! - [`Predecoder`] / [`Tiered`]: the two-tier fast path — a conservative
//!   certifier that resolves provably-locally-matchable shots without
//!   invoking a full decoder, and the [`DecoderFactory`] adapter that
//!   threads it through the engine ([`Tiered::without_predecode`] is the
//!   escape hatch).
//! - [`estimate_ler`]: end-to-end residual logical-error-rate estimation
//!   using the batched Pauli-frame sampler.
//! - [`LerEngine`]: the thread-parallel Monte-Carlo engine behind
//!   `estimate_ler`, deterministic in `(options, base_seed)` regardless of
//!   thread count, with per-run throughput counters in [`EngineRun`].
//!   Hardened against decoder faults: inputs are validated up front
//!   ([`MatchingGraph::validate`], typed [`ValidationError`]/[`EngineError`]),
//!   each chunk runs panic-isolated with a deterministic same-seed retry on
//!   a degradation ladder, and [`FaultPlan`] can inject faults (panics,
//!   stalls, corrupted defects, poisoned weights) at chosen chunks to prove
//!   it all works.
//! - Calibration-aware reweighting: graphs built from a DEM keep per-edge
//!   provenance, so [`MatchingGraph::reweight`] recomputes probabilities and
//!   weights in place from an updated [`caliqec_stab::RateTable`] without
//!   re-extracting the DEM ([`MwpmDecoder::reweight`] and
//!   [`UnionFindDecoder::reweight`] also invalidate their weight-derived
//!   caches), and [`LerEngine::estimate_epochs`] decodes a shot budget under
//!   an [`EpochSchedule`] of drifting per-gate rates (DESIGN.md §10).
//!
//! # Example
//!
//! ```
//! use caliqec_match::{estimate_ler, graph_for_circuit, SampleOptions, UnionFindDecoder};
//! use caliqec_stab::{Basis, Circuit, Noise1};
//! use rand::SeedableRng;
//!
//! // 3-qubit repetition code under 2% bit-flip noise.
//! let mut c = Circuit::new(5);
//! c.reset(Basis::Z, &[0, 1, 2, 3, 4]);
//! c.noise1(Noise1::XError, 0.02, &[0, 1, 2]);
//! c.cx(0, 3); c.cx(1, 3); c.cx(1, 4); c.cx(2, 4);
//! let m0 = c.measure(3, Basis::Z, 0.0);
//! let m1 = c.measure(4, Basis::Z, 0.0);
//! c.detector(&[m0]);
//! c.detector(&[m1]);
//! let md = c.measure(0, Basis::Z, 0.0);
//! c.observable(0, &[md]);
//!
//! let mut decoder = UnionFindDecoder::new(graph_for_circuit(&c));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let est = estimate_ler(&c, &mut decoder, SampleOptions::default(), &mut rng);
//! assert!(est.per_shot() < 0.02); // decoding suppresses the physical rate
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod decode;
mod engine;
mod error;
mod faults;
mod graph;
mod mwpm;
mod predecode;
mod reference;
mod stream;
mod unionfind;

pub use caliqec_obs as obs;
pub use cluster::{
    cluster_hist_bucket, ClusterOutcome, ClusterTier, CLUSTER_HIST_BUCKETS, MAX_CLUSTER_DEFECTS,
};
pub use decode::{estimate_ler, graph_for_circuit, Decoder, LerEstimate, SampleOptions};
pub use engine::{
    decode_window_masks, defect_hist_bucket, estimate_ler_seeded, CalibrationEpoch, DecoderFactory,
    EngineRun, EpochSchedule, GraphDecoderFactory, LerEngine, RareOptions, WindowOutcome,
    WindowScratch, WindowStats, DEFECT_HIST_BUCKETS, LADDER_RUNGS,
};
pub use error::{EngineError, ValidationError};
pub use faults::{poison_weights, FaultKind, FaultPlan, Injection};
pub use graph::{Edge, MatchingGraph, NodeId};
pub use mwpm::MwpmDecoder;
pub use predecode::{ClusterGate, Predecoder, Tiered, CLUSTER_GATE_MIN_MEAN_DEFECTS};
pub use reference::ReferenceUnionFind;
pub use stream::{
    loopback_serve, Disposition, LoopbackOptions, LoopbackReport, PushOutcome, ServiceHealth,
    StreamConfig, StreamReport, StreamingDecoder, TenantHealth, TenantSpec, WindowResult,
};
pub use unionfind::UnionFindDecoder;
