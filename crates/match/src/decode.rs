//! Decoder interface and Monte-Carlo logical-error-rate estimation.

use crate::engine::estimate_ler_seeded;
use crate::graph::{MatchingGraph, NodeId};
use caliqec_stab::{extract_dem, Circuit, CompiledCircuit};
use rand::Rng;

/// A syndrome decoder: maps a set of fired detectors to a predicted logical
/// observable flip mask.
pub trait Decoder {
    /// Decodes `defects` (indices of fired detectors) to the bitmask of
    /// logical observables predicted to have flipped.
    fn decode(&mut self, defects: &[NodeId]) -> u64;
}

/// Result of a Monte-Carlo logical-error-rate estimation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LerEstimate {
    /// Number of shots sampled.
    pub shots: usize,
    /// Number of shots whose residual (post-correction) observable flipped.
    pub failures: usize,
}

impl LerEstimate {
    /// Logical error probability per shot.
    pub fn per_shot(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.failures as f64 / self.shots as f64
    }

    /// Logical error probability per round, assuming `rounds` independent
    /// opportunities per shot: `1 - (1 - p_shot)^(1/rounds)`.
    pub fn per_round(&self, rounds: usize) -> f64 {
        let p = self.per_shot().min(0.5);
        if rounds <= 1 {
            return p;
        }
        1.0 - (1.0 - p).powf(1.0 / rounds as f64)
    }

    /// Standard error of the per-shot estimate (binomial).
    pub fn std_err(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.per_shot();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }
}

/// Options controlling [`estimate_ler`] and [`crate::LerEngine::estimate`].
///
/// # `max_failures` / `max_shots` interaction
///
/// - `max_shots == 0` means "sample exactly `min_shots`" (rounded up to
///   whole 64-shot batches); `max_failures` may still cut the run short.
/// - `max_shots > 0` extends the budget past `min_shots` while chasing
///   `max_failures`: sampling proceeds until either the cumulative failure
///   count reaches `max_failures` or `max_shots` is exhausted.
/// - Early-stopping is resolved at *chunk* granularity (a deterministic
///   group of batches — see [`crate::LerEngine`]): the reported `shots`
///   counts **all decoded batches** of every chunk up to and including the
///   one at which the failure budget was met, so the estimate is an
///   unbiased ratio over everything that was decoded and counted.
#[derive(Clone, Copy, Debug)]
pub struct SampleOptions {
    /// Minimum number of shots (rounded up to whole 64-shot batches).
    pub min_shots: usize,
    /// Stop early once this many failures have been observed (0 = never).
    pub max_failures: usize,
    /// Hard cap on shots when chasing `max_failures` (0 = `min_shots`).
    pub max_shots: usize,
}

impl Default for SampleOptions {
    fn default() -> Self {
        SampleOptions {
            min_shots: 10_000,
            max_failures: 0,
            max_shots: 0,
        }
    }
}

/// Estimates the residual logical error rate of `circuit` under `decoder`.
///
/// For each sampled shot, the fired detectors are decoded and the predicted
/// observable mask is compared with the actual one; a mismatch in any
/// observable bit counts as a failure.
///
/// This is a thin single-threaded wrapper over the chunked schedule of
/// [`crate::LerEngine`]: it draws a 64-bit base seed from `rng` and runs
/// [`estimate_ler_seeded`] on the calling thread, so
/// `LerEngine::estimate(..)` with the same options and base seed returns
/// the identical [`LerEstimate`] at any thread count.
///
/// # Examples
///
/// ```
/// use caliqec_match::{estimate_ler, MatchingGraph, SampleOptions, UnionFindDecoder};
/// use caliqec_stab::{Basis, Circuit, Noise1, extract_dem};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.reset(Basis::Z, &[0]);
/// c.noise1(Noise1::XError, 0.01, &[0]);
/// let m = c.measure(0, Basis::Z, 0.0);
/// c.detector(&[m]);
/// c.observable(0, &[m]);
///
/// let mut dec = UnionFindDecoder::new(MatchingGraph::from_dem(&extract_dem(&c)));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let est = estimate_ler(&c, &mut dec, SampleOptions { min_shots: 640, ..Default::default() }, &mut rng);
/// // A single perfectly-heralded error is always corrected.
/// assert_eq!(est.failures, 0);
/// ```
pub fn estimate_ler<D: Decoder, R: Rng>(
    circuit: &Circuit,
    decoder: &mut D,
    options: SampleOptions,
    rng: &mut R,
) -> LerEstimate {
    let compiled = CompiledCircuit::new(circuit);
    let base_seed: u64 = rng.random();
    estimate_ler_seeded(&compiled, decoder, options, base_seed)
}

/// Convenience: builds a matching graph for `circuit` by extracting its DEM.
pub fn graph_for_circuit(circuit: &Circuit) -> MatchingGraph {
    MatchingGraph::from_dem(&extract_dem(circuit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unionfind::UnionFindDecoder;
    use caliqec_stab::{Basis, Noise1};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Distance-n repetition code, single round, X noise.
    fn rep_circuit(n: usize, p: f64) -> Circuit {
        let data: Vec<u32> = (0..n as u32).collect();
        let anc: Vec<u32> = (n as u32..(2 * n - 1) as u32).collect();
        let mut c = Circuit::new(2 * n - 1);
        c.reset(Basis::Z, &(0..(2 * n - 1) as u32).collect::<Vec<_>>());
        c.noise1(Noise1::XError, p, &data);
        for i in 0..n - 1 {
            c.cx(data[i], anc[i]);
            c.cx(data[i + 1], anc[i]);
        }
        let ms: Vec<_> = anc.iter().map(|&a| c.measure(a, Basis::Z, 0.0)).collect();
        for m in &ms {
            c.detector(&[*m]);
        }
        // Logical observable: majority-protected bit, read from qubit 0 and
        // corrected by the decoder.
        let md = c.measure(data[0], Basis::Z, 0.0);
        c.observable(0, &[md]);
        c
    }

    #[test]
    fn repetition_code_suppresses_errors() {
        let p = 0.05;
        let mut rng = StdRng::seed_from_u64(9);
        let c3 = rep_circuit(3, p);
        let c7 = rep_circuit(7, p);
        let mut d3 = UnionFindDecoder::new(graph_for_circuit(&c3));
        let mut d7 = UnionFindDecoder::new(graph_for_circuit(&c7));
        let opts = SampleOptions {
            min_shots: 20_000,
            ..Default::default()
        };
        let e3 = estimate_ler(&c3, &mut d3, opts, &mut rng);
        let e7 = estimate_ler(&c7, &mut d7, opts, &mut rng);
        // Physical 5% -> logical must be well below p for d=3 and lower
        // still for d=7.
        assert!(e3.per_shot() < p, "d=3 ler {}", e3.per_shot());
        assert!(
            e7.per_shot() < e3.per_shot(),
            "d=7 {} !< d=3 {}",
            e7.per_shot(),
            e3.per_shot()
        );
    }

    #[test]
    fn ler_estimate_statistics() {
        let est = LerEstimate {
            shots: 1000,
            failures: 10,
        };
        assert!((est.per_shot() - 0.01).abs() < 1e-12);
        assert!(est.std_err() > 0.0);
        assert!(est.per_round(10) < est.per_shot());
        assert_eq!(est.per_round(1), est.per_shot());
    }

    #[test]
    fn early_stop_on_failures() {
        let c = rep_circuit(3, 0.4);
        let mut dec = UnionFindDecoder::new(graph_for_circuit(&c));
        let mut rng = StdRng::seed_from_u64(1);
        let est = estimate_ler(
            &c,
            &mut dec,
            SampleOptions {
                min_shots: 64,
                max_failures: 5,
                max_shots: 64 * 1000,
            },
            &mut rng,
        );
        assert!(est.failures >= 5);
        assert!(est.shots < 64 * 1000);
    }

    #[test]
    fn zero_shots_estimate_is_zero() {
        let est = LerEstimate::default();
        assert_eq!(est.per_shot(), 0.0);
        assert_eq!(est.std_err(), 0.0);
    }
}
