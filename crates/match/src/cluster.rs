//! Dense-regime decode tier: flood decomposition plus per-cluster
//! certification for shots the sparse predecoder cannot touch.
//!
//! The tier-1 predecoder ([`crate::Predecoder`]) is all-or-nothing *per
//! shot*: one uncertifiable defect declines the whole syndrome, so at
//! d = 15 / p = 1e-3 — where every shot carries ~35 defects from ~17
//! independent error mechanisms — it never fires and the full decoder pays
//! for every mechanism of every shot. [`ClusterTier`] moves the
//! certification boundary from the shot to the *cluster*: the defect set is
//! flood-decomposed into connected components of the truncated near-table
//! adjacency (two defects join iff their exact boundary-avoiding distance
//! is at most the table radius), each component is certified independently
//! with the predecoder's own three-pass margin check, certified components
//! are peeled locally (their masks are potential gradients, XORed into the
//! shot mask), and only the union of uncertified clusters is handed — in a
//! single call — to the full decoder.
//!
//! # Separation argument
//!
//! Why may a certified cluster be peeled while other defects remain? The
//! predecoder's cross-margin check (pass 3) certifies a defect pair in
//! different units when their distance exceeds the sum of unit weights —
//! and treats *absence from the truncated near table* as proof of distance
//! greater than the table radius. Flood decomposition makes that proof
//! structural: defects in different flood clusters are, by construction,
//! farther apart than the radius. The tier additionally caps every
//! certified unit weight at `(radius − EPS) / 2`, so for any two defects
//! `x`, `y` in different *certified* clusters,
//! `d(x, y) > radius ≥ W_x + W_y + EPS` — exactly the inequality pass 3
//! needs. Certified clusters therefore satisfy, jointly, every condition of
//! the predecoder's exactness theorem (unit margins, flatness, cross
//! margins), and on a shot where **all** clusters certify the XOR of
//! per-cluster gradients is provably the mask both
//! [`crate::UnionFindDecoder`] and [`crate::MwpmDecoder`] return for the
//! whole defect set.
//!
//! # Widened tables
//!
//! The tier does *not* share the predecoder's tables: it builds its own
//! with [`Tables::build_wide`](crate::predecode), whose radius is sized off
//! the heaviest internal edge (`2 × min(max_ball_edge, 4 × median)`, with
//! the median as a floor) instead of twice the median. On graphs with a
//! realistic weight spread this lifts the unit cap `(radius − EPS) / 2`
//! above *every* single-edge pair weight — the dominant cluster population
//! at `d = 15`, `p = 1e-3`, where the predecoder-radius cap of
//! `≈ 1.01 × median` rejects precisely the pairs whose edge weight sits
//! above the median. The wider balls also let pass 3 resolve intra-cluster
//! cross margins by actual distance lookups (the threshold fits under the
//! radius) instead of declining through the truncation guard, so two
//! merged mechanisms certify whenever their gap clears the summed unit
//! weights. The cost — a coarser flood and a bigger one-off Dijkstra — is
//! charged once per (worker, weight epoch), not per shot.
//!
//! When some cluster does *not* certify, no margin bounds its growth (a
//! deep bulk single can grow a union-find region of radius `bnd ≫ radius`
//! before draining), so peeling next to it is no longer provably identical
//! to the monolithic decode: the tier is then a documented decoder
//! *variant* that peels certified clusters and decodes the residual union
//! in one full-decoder call. DESIGN.md §12
//! spells out the honest accounting; the engine records separate golden
//! fingerprints for cluster-tier on/off, and the cross-validation proptests
//! pin the provable pieces (per-cluster masks against both full decoders on
//! the cluster's own defect list, and whole-shot equality whenever every
//! cluster certifies).
//!
//! # Scratch discipline
//!
//! Like the predecoder and the union-find decoder, all per-shot scratch
//! (node→defect slots, per-cluster defect flags) is restored via the defect
//! list itself after every call: a [`ClusterTier`] is reusable with zero
//! steady-state allocation, and clones share the widened certification
//! tables via `Arc` (one wide table build serves every clone).

use crate::graph::{MatchingGraph, NodeId};
use crate::predecode::{Predecoder, Tables, EPS, MAX_CERT_DEFECTS};
use std::sync::Arc;

/// Clusters larger than this skip certification outright (the O(k²)
/// intra-cluster cross-margin check would dwarf the decode it replaces, and
/// big clusters essentially never certify); they go straight to the full
/// decoder. Deliberately the predecoder's shot cap: a cluster that fits
/// under it also fits the exact-matching DP bound.
pub const MAX_CLUSTER_DEFECTS: usize = MAX_CERT_DEFECTS;

/// Number of buckets in the per-shot cluster-size histogram the engine
/// aggregates: sizes 1..=15 exactly, 16+ in the last bucket.
pub const CLUSTER_HIST_BUCKETS: usize = 16;

/// Histogram bucket for a flood cluster of `size` defects.
#[inline]
pub fn cluster_hist_bucket(size: usize) -> usize {
    size.clamp(1, CLUSTER_HIST_BUCKETS) - 1
}

/// Per-shot summary returned by [`ClusterTier::decompose`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterOutcome {
    /// XOR of the certified clusters' observable masks (potential
    /// gradients). The shot's full mask is this XORed with one full-decoder
    /// call on [`ClusterTier::residual_defects`].
    pub mask: u64,
    /// Flood clusters the defect set decomposed into.
    pub clusters: u32,
    /// Clusters that certified and were peeled locally.
    pub peeled_clusters: u32,
    /// Defects belonging to peeled clusters.
    pub peeled_defects: u32,
    /// Defects left for the full decoder (in [`ClusterTier::residual_clusters`]).
    pub residual_defects: u32,
}

impl ClusterOutcome {
    /// True when every cluster certified: the shot is fully resolved and
    /// [`ClusterOutcome::mask`] is provably the monolithic decoders' mask.
    #[inline]
    pub fn fully_peeled(&self) -> bool {
        self.residual_defects == 0
    }
}

/// The dense-regime cluster tier. See the module docs for the decomposition
/// and the separation argument; see [`crate::Tiered::with_cluster`] for the
/// engine opt-in.
#[derive(Clone, Debug)]
pub struct ClusterTier {
    tables: Arc<Tables>,
    /// node → index into the current defect list (`u32::MAX` = clean);
    /// restored via the defect list after every call.
    slot: Vec<u32>,
    /// Per-cluster defect flags for certification; restored after each
    /// cluster's certify pass.
    is_defect: Vec<bool>,
    /// Union-find parents over defect indices (rebuilt per shot).
    parent: Vec<u32>,
    /// Defect indices grouped by cluster, clusters in order of smallest
    /// member index, members ascending.
    members: Vec<u32>,
    /// CSR offsets into `members`, one entry per cluster plus a tail.
    cluster_off: Vec<u32>,
    /// Sizes of all flood clusters of the current shot, cluster order.
    sizes: Vec<u32>,
    /// Defect node ids of uncertified clusters, concatenated cluster-major.
    residual: Vec<NodeId>,
    /// End offsets into `residual`, one per uncertified cluster.
    residual_ends: Vec<u32>,
    /// Defect index → belongs to an uncertified cluster (current shot).
    res_flag: Vec<bool>,
    /// Sorted-ascending union of all residual defects, ready for a single
    /// full-decoder call.
    residual_union: Vec<NodeId>,
}

impl ClusterTier {
    /// Builds a cluster tier with its own *widened* certification tables
    /// (see the module docs — the radius is sized off the heaviest internal
    /// edge, not the median). Clones share the tables via `Arc`; per-worker
    /// instances should clone a prototype rather than rebuild.
    pub fn new(graph: &MatchingGraph) -> ClusterTier {
        Self::from_tables(Arc::new(Tables::build_wide(graph)))
    }

    /// Builds a cluster tier for the same graph `pre` was built against.
    /// The tier needs wider tables than the predecoder's, so this runs its
    /// own truncated-Dijkstra build — it is a convenience for the engine's
    /// per-epoch path, not a cheap share.
    pub fn from_predecoder(pre: &Predecoder) -> ClusterTier {
        Self::new(&pre.tables().graph)
    }

    fn from_tables(tables: Arc<Tables>) -> ClusterTier {
        let n = tables.graph.num_nodes();
        ClusterTier {
            tables,
            slot: vec![u32::MAX; n],
            is_defect: vec![false; n],
            parent: Vec::new(),
            members: Vec::new(),
            cluster_off: Vec::new(),
            sizes: Vec::new(),
            residual: Vec::new(),
            residual_ends: Vec::new(),
            res_flag: Vec::new(),
            residual_union: Vec::new(),
        }
    }

    /// True when the shared tables were built against the current weight
    /// epoch of `graph` (mirrors [`Predecoder::is_current_for`]).
    pub fn is_current_for(&self, graph: &MatchingGraph) -> bool {
        self.tables.graph.weight_epoch() == graph.weight_epoch()
    }

    /// Flood-decomposes `defects` into independent clusters, certifies and
    /// peels each certifiable cluster, and stages the rest for the full
    /// decoder (retrieve the union with [`ClusterTier::residual_defects`],
    /// or cluster by cluster with [`ClusterTier::residual_clusters`] —
    /// both remain valid until the next `decompose` call).
    ///
    /// `defects` must be sorted ascending and duplicate-free, as produced
    /// by [`caliqec_stab::SparseBatch::defects`].
    pub fn decompose(&mut self, defects: &[NodeId]) -> ClusterOutcome {
        debug_assert!(defects.windows(2).all(|w| w[0] < w[1]));
        self.members.clear();
        self.cluster_off.clear();
        self.sizes.clear();
        self.residual.clear();
        self.residual_ends.clear();
        self.residual_union.clear();
        let k = defects.len();
        if k == 0 {
            return ClusterOutcome::default();
        }

        // --- Flood decomposition: defect i and j join iff one lies in the
        // other's truncated ball (distance ≤ radius). Ball membership is
        // symmetric and ball lists ascend, so scanning only the tail of
        // each ball (nodes above the defect itself) finds every edge once;
        // the node→slot array the scan probes is a few kilobytes and stays
        // cache-resident across the whole dense chunk.
        self.parent.clear();
        self.parent.extend(0..k as u32);
        for (i, &u) in defects.iter().enumerate() {
            self.slot[u] = i as u32;
        }
        let tables = Arc::clone(&self.tables);
        for (i, &u) in defects.iter().enumerate() {
            let ball = tables.ball(u);
            let tail = ball.partition_point(|&v| (v as usize) <= u);
            for &v in &ball[tail..] {
                let j = self.slot[v as usize];
                if j != u32::MAX {
                    self.union(i as u32, j);
                }
            }
        }
        for &u in defects {
            self.slot[u] = u32::MAX;
        }

        // --- Group members by root, clusters ordered by smallest member
        // index (roots are minimal members thanks to union-by-min), members
        // ascending. Two counting passes over the parent array.
        let mut outcome = ClusterOutcome::default();
        for i in 0..k as u32 {
            if self.find(i) == i {
                // Root seen in ascending order: assign the next cluster id
                // by reusing `sizes` as a root → cluster map via push order.
                self.cluster_off.push(0);
                self.sizes.push(i); // temporarily: cluster id → root index
            }
        }
        let clusters = self.sizes.len();
        // Count members per cluster into cluster_off (roots ascend, and
        // sizes[] currently maps cluster id → root, so binary search works).
        for i in 0..k as u32 {
            let root = self.find(i);
            let c = self.sizes.binary_search(&root).expect("root is recorded");
            self.cluster_off[c] += 1;
        }
        // Prefix-sum into CSR offsets, then fill members in ascending index
        // order (stable within each cluster).
        let mut acc = 0u32;
        for off in self.cluster_off.iter_mut() {
            let count = *off;
            *off = acc;
            acc += count;
        }
        self.cluster_off.push(acc);
        self.members.resize(k, 0);
        {
            let mut cursor: Vec<u32> = self.cluster_off[..clusters].to_vec();
            for i in 0..k as u32 {
                let root = self.find(i);
                let c = self.sizes.binary_search(&root).expect("root is recorded");
                self.members[cursor[c] as usize] = i;
                cursor[c] += 1;
            }
        }
        // Replace the temporary root map with the real cluster sizes.
        for c in 0..clusters {
            self.sizes[c] = self.cluster_off[c + 1] - self.cluster_off[c];
        }

        // --- Certify-and-peel, cluster by cluster.
        outcome.clusters = clusters as u32;
        self.res_flag.clear();
        self.res_flag.resize(k, false);
        let mut scratch = [0usize; MAX_CLUSTER_DEFECTS];
        for c in 0..clusters {
            let lo = self.cluster_off[c] as usize;
            let hi = self.cluster_off[c + 1] as usize;
            let size = hi - lo;
            let certified = if size <= MAX_CLUSTER_DEFECTS {
                for (s, &m) in scratch.iter_mut().zip(&self.members[lo..hi]) {
                    *s = defects[m as usize];
                }
                let cluster = &scratch[..size];
                for &u in cluster {
                    self.is_defect[u] = true;
                }
                let mask = certify_cluster(&self.tables, &self.is_defect, cluster);
                for &u in cluster {
                    self.is_defect[u] = false;
                }
                mask
            } else {
                None
            };
            match certified {
                Some(mask) => {
                    outcome.mask ^= mask;
                    outcome.peeled_clusters += 1;
                    outcome.peeled_defects += size as u32;
                }
                None => {
                    for &m in &self.members[lo..hi] {
                        self.residual.push(defects[m as usize]);
                        self.res_flag[m as usize] = true;
                    }
                    self.residual_ends.push(self.residual.len() as u32);
                    outcome.residual_defects += size as u32;
                }
            }
        }
        // Sorted union of the residual clusters for the engine's single
        // full-decoder call (defect order = ascending node id, the same
        // order `SparseBatch::defects` produces).
        for (i, &u) in defects.iter().enumerate() {
            if self.res_flag[i] {
                self.residual_union.push(u);
            }
        }
        outcome
    }

    /// Sorted-ascending union of every uncertified cluster's defects from
    /// the last [`ClusterTier::decompose`] call — what the engine feeds to
    /// the full decoder in a single call. Decoding the union in one call
    /// (rather than cluster by cluster) amortises the decoder's per-call
    /// growth-iteration overhead and is byte-for-byte the monolithic decode
    /// of the residual defect set.
    pub fn residual_defects(&self) -> &[NodeId] {
        &self.residual_union
    }

    /// The uncertified clusters of the last [`ClusterTier::decompose`]
    /// call, each a sorted-ascending defect list. Exposed for diagnostics,
    /// cross-validation tests, and the decomposition benches; the engine
    /// decodes [`ClusterTier::residual_defects`] in one call instead.
    /// Cluster order matches the flood order (smallest member first).
    pub fn residual_clusters(&self) -> impl Iterator<Item = &[NodeId]> {
        let mut start = 0usize;
        self.residual_ends.iter().map(move |&end| {
            let slice = &self.residual[start..end as usize];
            start = end as usize;
            slice
        })
    }

    /// Sizes of *all* flood clusters (peeled and residual) of the last
    /// [`ClusterTier::decompose`] call, in cluster order. Feed through
    /// [`cluster_hist_bucket`] for the engine's cluster-size histogram.
    pub fn cluster_sizes(&self) -> &[u32] {
        &self.sizes
    }

    fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            let gp = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = gp;
            i = gp;
        }
        i
    }

    /// Union by minimum root index: keeps roots deterministic and makes
    /// every root the smallest member of its cluster.
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Per-cluster certification: the predecoder's three-pass margin check
/// restricted to one flood cluster, with the inter-cluster unit-weight cap
/// from the module docs. `is_defect` must mark exactly the members of
/// `cluster` (sorted ascending, `len ≤ MAX_CLUSTER_DEFECTS`).
///
/// Returns the cluster's certified observable mask, or `None` when any
/// margin fails — never a wrong mask.
fn certify_cluster(t: &Tables, is_defect: &[bool], cluster: &[NodeId]) -> Option<u64> {
    let g = &t.graph;
    let boundary = g.boundary();
    let k = cluster.len();
    // Inter-cluster cross margins are discharged by flood separation
    // (distance > radius) only while both unit weights fit under half the
    // radius; heavier units must decline. With the widened tables this cap
    // clears every internal edge weight (see the module docs).
    let w_cap = (t.radius - EPS) / 2.0;
    let mut mask = 0u64;
    let mut unit_w = [0.0f64; MAX_CLUSTER_DEFECTS];
    let mut partner = [usize::MAX; MAX_CLUSTER_DEFECTS];

    // Pass 1: unique defect neighbour via the CSR adjacency. Only members
    // of this cluster are marked, so a (necessarily heavier-than-radius)
    // direct edge into another cluster does not propose a pairing — its
    // members are margin-checked as singles/pairs of their own clusters.
    for (i, &u) in cluster.iter().enumerate() {
        let mut nbr = usize::MAX;
        for &ei in g.incident(u) {
            let v = g.other_endpoint(ei as usize, u);
            if v == u || v == boundary || !is_defect[v] {
                continue;
            }
            if nbr != usize::MAX && nbr != v {
                return None; // two distinct defect neighbours
            }
            nbr = v;
        }
        if nbr != usize::MAX {
            let j = cluster
                .binary_search(&nbr)
                .expect("neighbour is in cluster");
            partner[i] = j;
        }
    }

    // Pass 2: per-unit weights, margins, and masks (see
    // `Predecoder::certify` for the per-branch reasoning; the additions
    // are the `w_cap` clamp on every accepted unit weight and the
    // two-gauge flatness check — a unit flat under either potential
    // contributes that gauge's gradient, see `Tables::single_mask` /
    // `Tables::pair_mask`).
    for (i, &u) in cluster.iter().enumerate() {
        let j = partner[i];
        if j == usize::MAX {
            let w = t.bnd[u];
            if !w.is_finite() || w <= EPS || w > w_cap {
                return None;
            }
            mask ^= t.single_mask(u, w)?;
            unit_w[i] = w;
        } else {
            debug_assert_eq!(partner[j], i, "adjacency pairing is mutual");
            if i < j {
                let v = cluster[j];
                let w = t.near(u, v)?;
                if !w.is_finite() || w <= EPS || w > w_cap {
                    return None;
                }
                let bsum = t.bnd[u] + t.bnd[v];
                if w + EPS < bsum {
                    mask ^= t.pair_mask(u, v, w)?;
                    unit_w[i] = w;
                    unit_w[j] = w;
                } else if bsum + EPS < w {
                    // Demoted singles: each member is a unit of its own and
                    // may certify under its own gauge.
                    for (x, xi) in [(u, i), (v, j)] {
                        let wx = t.bnd[x];
                        if !wx.is_finite() || wx <= EPS || wx > w_cap {
                            return None;
                        }
                        mask ^= t.single_mask(x, wx)?;
                        unit_w[xi] = wx;
                    }
                } else {
                    return None; // exact tie: structures ambiguous
                }
            }
        }
    }

    // Pass 3: intra-cluster cross margins. Cross-*cluster* pairs need no
    // lookup: flood separation proves distance > radius ≥ W_x + W_y + EPS
    // (every accepted weight is ≤ (radius − EPS) / 2).
    for i in 0..k {
        for j in (i + 1)..k {
            if partner[i] == j {
                continue; // same unit
            }
            let threshold = unit_w[i] + unit_w[j] + EPS;
            if threshold > t.radius {
                return None; // truncated ball cannot certify the gap
            }
            match t.near(cluster[i], cluster[j]) {
                Some(d) if d <= threshold => {
                    return None;
                }
                _ => {}
            }
        }
    }
    Some(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{graph_for_circuit, Decoder};
    use crate::mwpm::MwpmDecoder;
    use crate::unionfind::UnionFindDecoder;
    use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
    use caliqec_stab::{FrameSampler, SparseBatch, BATCH};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn memory_setup(d: usize, p: f64) -> (caliqec_stab::Circuit, MatchingGraph) {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            d,
            MemoryBasis::Z,
        );
        let graph = graph_for_circuit(&mem.circuit);
        (mem.circuit, graph)
    }

    #[test]
    fn empty_shot_decomposes_to_nothing() {
        let (_, g) = memory_setup(3, 1e-3);
        let mut tier = ClusterTier::new(&g);
        let out = tier.decompose(&[]);
        assert_eq!(out, ClusterOutcome::default());
        assert!(out.fully_peeled());
        assert_eq!(tier.residual_clusters().count(), 0);
        assert!(tier.cluster_sizes().is_empty());
    }

    #[test]
    fn clones_share_the_widened_tables() {
        let (_, g) = memory_setup(3, 1e-3);
        let pre = Predecoder::new(&g);
        let tier = ClusterTier::from_predecoder(&pre);
        // The tier's tables are widened, not the predecoder's...
        assert!(tier.tables.radius >= pre.tables().radius);
        // ...but clones share them, so per-worker instances are cheap.
        let clone = tier.clone();
        assert!(Arc::ptr_eq(&tier.tables, &clone.tables));
    }

    #[test]
    fn scratch_is_restored_between_calls() {
        let (circuit, g) = memory_setup(5, 1e-2);
        let mut tier = ClusterTier::new(&g);
        let mut sampler = FrameSampler::new(&circuit);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sparse = SparseBatch::new();
        let ev = sampler.sample_batch(&mut rng);
        sparse.extract(&ev);
        for s in 0..BATCH {
            let defects = sparse.defects(s);
            let a = tier.decompose(defects);
            assert!(tier.slot.iter().all(|&x| x == u32::MAX), "slot scratch");
            assert!(tier.is_defect.iter().all(|&b| !b), "flag scratch");
            let b = tier.decompose(defects);
            assert_eq!(a, b, "decompose must be deterministic and reusable");
        }
    }

    #[test]
    fn decomposition_partitions_the_defect_list() {
        let (circuit, g) = memory_setup(7, 3e-3);
        let mut tier = ClusterTier::new(&g);
        let mut sampler = FrameSampler::new(&circuit);
        let mut rng = StdRng::seed_from_u64(11);
        let mut sparse = SparseBatch::new();
        for _ in 0..4 {
            let ev = sampler.sample_batch(&mut rng);
            sparse.extract(&ev);
            for s in 0..BATCH {
                let defects = sparse.defects(s);
                let out = tier.decompose(defects);
                let sizes: u64 = tier.cluster_sizes().iter().map(|&s| s as u64).sum();
                assert_eq!(sizes, defects.len() as u64, "cluster sizes partition");
                assert_eq!(
                    out.peeled_defects + out.residual_defects,
                    defects.len() as u32,
                    "peeled + residual partition"
                );
                assert_eq!(
                    tier.residual_clusters()
                        .map(|c| c.len() as u32)
                        .sum::<u32>(),
                    out.residual_defects
                );
                for c in tier.residual_clusters() {
                    assert!(c.windows(2).all(|w| w[0] < w[1]), "residual sorted");
                }
                let union = tier.residual_defects();
                assert_eq!(union.len() as u32, out.residual_defects);
                assert!(union.windows(2).all(|w| w[0] < w[1]), "union sorted");
                let mut rebuilt: Vec<usize> = tier.residual_clusters().flatten().copied().collect();
                rebuilt.sort_unstable();
                assert_eq!(rebuilt, union, "union is the sorted cluster concat");
                assert_eq!(
                    out.clusters,
                    out.peeled_clusters + tier.residual_clusters().count() as u32
                );
            }
        }
    }

    #[test]
    fn fully_peeled_shots_match_both_full_decoders() {
        // Whenever every flood cluster certifies, the XOR of per-cluster
        // gradients must equal what union-find and exact matching return
        // for the whole defect list — the separation theorem on real
        // syndromes. A healthy fraction of shots must exercise the path.
        let (circuit, g) = memory_setup(7, 3e-3);
        let mut tier = ClusterTier::new(&g);
        let mut uf = UnionFindDecoder::new(g.clone());
        let mut mwpm = MwpmDecoder::new(g.clone());
        let mut sampler = FrameSampler::new(&circuit);
        let mut rng = StdRng::seed_from_u64(23);
        let mut sparse = SparseBatch::new();
        let mut peeled_shots = 0u64;
        let mut peeled_clusters = 0u64;
        for _ in 0..24 {
            let ev = sampler.sample_batch(&mut rng);
            sparse.extract(&ev);
            for s in 0..BATCH {
                let defects = sparse.defects(s);
                if defects.is_empty() {
                    continue;
                }
                let out = tier.decompose(defects);
                peeled_clusters += out.peeled_clusters as u64;
                if out.fully_peeled() {
                    peeled_shots += 1;
                    assert_eq!(out.mask, uf.decode(defects), "UF {defects:?}");
                    assert_eq!(out.mask, mwpm.decode(defects), "MWPM {defects:?}");
                }
            }
        }
        assert!(peeled_shots > 20, "only {peeled_shots} shots fully peeled");
        assert!(
            peeled_clusters > peeled_shots,
            "multi-cluster peels expected"
        );
    }

    #[test]
    fn dense_shot_from_separated_mechanisms_fully_peels() {
        // Hand-build a dense syndrome as a union of single-edge error
        // mechanisms whose clusters are pairwise separated: the tier must
        // peel all of it and agree with both monolithic decoders.
        let (_, g) = memory_setup(15, 1e-3);
        let mut tier = ClusterTier::new(&g);
        let mut uf = UnionFindDecoder::new(g.clone());
        let mut mwpm = MwpmDecoder::new(g.clone());
        let boundary = g.boundary();
        let mut rng = StdRng::seed_from_u64(99);
        use rand::RngExt;
        for _ in 0..40 {
            // Sample internal edges and accept those whose endpoints stay
            // clear of every previously selected defect's ball.
            let mut defects: Vec<usize> = Vec::new();
            let mut guard = vec![false; g.num_nodes()];
            let mut attempts = 0;
            while defects.len() < 24 && attempts < 4000 {
                attempts += 1;
                let ei = rng.random_range(0..g.edges().len());
                let e = &g.edges()[ei];
                if e.u == boundary || e.v == boundary || e.u == e.v {
                    continue;
                }
                if guard[e.u] || guard[e.v] || defects.contains(&e.u) || defects.contains(&e.v) {
                    continue;
                }
                defects.push(e.u);
                defects.push(e.v);
                for u in [e.u, e.v] {
                    guard[u] = true;
                    for &v in tier.tables.ball(u) {
                        guard[v as usize] = true;
                        // Pad by one more ball so distinct mechanisms stay
                        // in distinct flood clusters.
                        for &w in tier.tables.ball(v as usize) {
                            guard[w as usize] = true;
                        }
                    }
                }
            }
            defects.sort_unstable();
            if defects.len() <= Predecoder::MAX_CERT_DEFECTS {
                continue; // not dense enough to be interesting
            }
            let out = tier.decompose(&defects);
            let mut mask = out.mask;
            for c in tier.residual_clusters() {
                mask ^= uf.decode(c);
            }
            assert_eq!(mask, uf.decode(&defects), "UF {defects:?}");
            if out.fully_peeled() {
                assert_eq!(out.mask, mwpm.decode(&defects), "MWPM {defects:?}");
            }
        }
    }
}
