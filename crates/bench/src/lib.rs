//! # caliqec-bench — experiment harness for the CaliQEC reproduction
//!
//! One module per table/figure of the paper's evaluation (see
//! [`experiments`]), plus Criterion micro-benchmarks over the substrates
//! (`cargo bench`). Run an individual experiment with e.g.
//! `cargo run --release -p caliqec-bench --bin fig10_ler_dynamics`, or all
//! of them with `--bin reproduce_all`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod report;
