//! # caliqec-bench — experiment harness for the CaliQEC reproduction
//!
//! One module per table/figure of the paper's evaluation (see
//! [`experiments`]), plus Criterion micro-benchmarks over the substrates
//! (`cargo bench`). Run an individual experiment with e.g.
//! `cargo run --release -p caliqec-bench --bin fig10_ler_dynamics`, or all
//! of them with `--bin reproduce_all`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod experiments;
pub mod report;

/// Drops the default log level to quiet for the figure/table/reproduce
/// binaries: their stdout report is the artifact, so observability chatter
/// stays off unless the user opts back in with `CALIQEC_LOG=info` (the
/// environment variable still wins over this default).
pub fn quiet_by_default() {
    caliqec_obs::verbosity::set_default(caliqec_obs::Verbosity::Quiet);
}

/// Parses `--threads N` (or `--threads=N`) from the process arguments for
/// the experiment binaries. Returns 0 (= auto: `CALIQEC_THREADS` if set,
/// else all cores) when absent or malformed.
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = a.strip_prefix("--threads=").and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    0
}

/// Parses `--<name> N` (or `--<name>=N`) from the process arguments,
/// falling back to `default` when absent or malformed. Companion to
/// [`threads_from_args`] for the experiment binaries' numeric flags.
pub fn usize_from_args(name: &str, default: usize) -> usize {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = a.strip_prefix(&prefix).and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    default
}

/// Parses `--<name> X` (or `--<name>=X`) as a float from the process
/// arguments, falling back to `default` when absent or malformed.
pub fn f64_from_args(name: &str, default: f64) -> f64 {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = a.strip_prefix(&prefix).and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    default
}

/// Parses `--<name> VALUE` (or `--<name>=VALUE`) from the process
/// arguments, falling back to `default` when absent.
pub fn string_from_args(name: &str, default: &str) -> String {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.next() {
                return v;
            }
        } else if let Some(v) = a.strip_prefix(&prefix) {
            return v.to_string();
        }
    }
    default.to_string()
}
