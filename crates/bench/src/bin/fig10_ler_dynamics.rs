//! Regenerates Figure 10: d = 11 LER dynamics through calibration cycles.
//!
//! Full stabilizer simulation + union-find decoding per time sample; expect
//! several minutes in release mode. `--threads N` sets the Monte-Carlo
//! worker count (default: `CALIQEC_THREADS`, else all cores); the results
//! are identical at any thread count.
fn main() {
    caliqec_bench::quiet_by_default();
    let params = caliqec_bench::experiments::fig10::Fig10Params {
        threads: caliqec_bench::threads_from_args(),
        ..Default::default()
    };
    eprintln!(
        "fig10: d={}, {} points x 3 scenarios, up to {} shots each...",
        params.d,
        params.cycles * params.points_per_cycle,
        params.max_shots
    );
    println!("{}", caliqec_bench::experiments::fig10::run(&params));
}
