//! Regenerates Figure 10: d = 11 LER dynamics through calibration cycles.
//!
//! Full stabilizer simulation + union-find decoding per time sample; expect
//! several minutes in release mode.
fn main() {
    let params = caliqec_bench::experiments::fig10::Fig10Params::default();
    eprintln!(
        "fig10: d={}, {} points x 3 scenarios, up to {} shots each...",
        params.d,
        params.cycles * params.points_per_cycle,
        params.max_shots
    );
    println!("{}", caliqec_bench::experiments::fig10::run(&params));
}
