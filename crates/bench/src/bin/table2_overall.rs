//! Regenerates Table 2: the No-Calibration / LSC / QECali comparison across
//! all benchmark rows and both drift eras.
fn main() {
    caliqec_bench::quiet_by_default();
    let params = caliqec_bench::experiments::table2::Table2Params::default();
    println!("{}", caliqec_bench::experiments::table2::run(&params));
}
