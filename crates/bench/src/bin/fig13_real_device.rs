//! Regenerates Figure 13: d = 3 LER under drift and isolation on the square
//! and heavy-hex lattices (the paper's hardware experiment, simulated).
fn main() {
    let params = caliqec_bench::experiments::fig13::Fig13Params::default();
    println!("{}", caliqec_bench::experiments::fig13::run(&params));
}
