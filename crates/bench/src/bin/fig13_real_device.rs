//! Regenerates Figure 13: d = 3 LER under drift and isolation on the square
//! and heavy-hex lattices (the paper's hardware experiment, simulated).
//! `--threads N` sets the Monte-Carlo worker count; results are identical
//! at any thread count.
fn main() {
    caliqec_bench::quiet_by_default();
    let params = caliqec_bench::experiments::fig13::Fig13Params {
        threads: caliqec_bench::threads_from_args(),
        ..Default::default()
    };
    println!("{}", caliqec_bench::experiments::fig13::run(&params));
}
