//! Runs every experiment in paper order and prints the combined report.
//!
//! `cargo run --release -p caliqec-bench --bin reproduce_all`
use caliqec_bench::experiments::*;

fn main() {
    let sep = "=".repeat(78);
    println!("{sep}\n{}", fig01::run(&Default::default()));
    println!("{sep}\n{}", fig07::run(&Default::default()));
    println!("{sep}\n{}", fig09::run(&Default::default()));
    eprintln!("running fig06 crosstalk probes...");
    println!("{sep}\n{}", fig06::run(&Default::default()));
    println!("{sep}\n{}", table1::run());
    println!("{sep}\n{}", fig11::run(&Default::default()));
    println!("{sep}\n{}", fig12::run(&Default::default()));
    println!("{sep}\n{}", sharing::run(&Default::default()));
    println!("{sep}\n{}", routing::run(&Default::default()));
    eprintln!("running fig13 Monte-Carlo (a minute or two)...");
    println!("{sep}\n{}", fig13::run(&Default::default()));
    eprintln!("running table 2 evaluation...");
    println!("{sep}\n{}", table2::run(&Default::default()));
    eprintln!("running fig10 Monte-Carlo (several minutes)...");
    println!("{sep}\n{}", fig10::run(&Default::default()));
}
