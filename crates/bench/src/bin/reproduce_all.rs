//! Runs every experiment in paper order and prints the combined report.
//!
//! `cargo run --release -p caliqec-bench --bin reproduce_all [--threads N]`
//!
//! `--threads` sets the Monte-Carlo worker count for the sampling-heavy
//! experiments (fig06, fig10, fig13); the default (0) honours the
//! `CALIQEC_THREADS` environment variable, else uses all cores. Measured
//! results are identical at any thread count.
use caliqec_bench::experiments::*;
use caliqec_bench::threads_from_args;

fn main() {
    caliqec_bench::quiet_by_default();
    let threads = threads_from_args();
    let sep = "=".repeat(78);
    println!("{sep}\n{}", fig01::run(&Default::default()));
    println!("{sep}\n{}", fig07::run(&Default::default()));
    println!("{sep}\n{}", fig09::run(&Default::default()));
    eprintln!("running fig06 crosstalk probes...");
    let mut fig06_params = fig06::Fig06Params::default();
    fig06_params.probe.threads = threads;
    println!("{sep}\n{}", fig06::run(&fig06_params));
    println!("{sep}\n{}", table1::run());
    println!("{sep}\n{}", fig11::run(&Default::default()));
    println!("{sep}\n{}", fig12::run(&Default::default()));
    println!("{sep}\n{}", sharing::run(&Default::default()));
    println!("{sep}\n{}", routing::run(&Default::default()));
    eprintln!("running fig13 Monte-Carlo (a minute or two)...");
    let fig13_params = fig13::Fig13Params {
        threads,
        ..Default::default()
    };
    println!("{sep}\n{}", fig13::run(&fig13_params));
    eprintln!("running table 2 evaluation...");
    println!("{sep}\n{}", table2::run(&Default::default()));
    eprintln!("running fig10 Monte-Carlo (several minutes)...");
    let fig10_params = fig10::Fig10Params {
        threads,
        ..Default::default()
    };
    println!("{sep}\n{}", fig10::run(&fig10_params));
}
