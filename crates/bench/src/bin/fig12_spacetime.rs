//! Regenerates the paper's Figure 12 (see the experiments module docs).
fn main() {
    println!(
        "{}",
        caliqec_bench::experiments::fig12::run(&Default::default())
    );
}
