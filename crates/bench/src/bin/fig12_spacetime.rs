//! Regenerates the paper's Figure 12 (see the experiments module docs).
fn main() {
    caliqec_bench::quiet_by_default();
    println!(
        "{}",
        caliqec_bench::experiments::fig12::run(&Default::default())
    );
}
