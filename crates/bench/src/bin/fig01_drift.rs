//! Regenerates the paper's Figure 01 (see the experiments module docs).
fn main() {
    caliqec_bench::quiet_by_default();
    println!(
        "{}",
        caliqec_bench::experiments::fig01::run(&Default::default())
    );
}
