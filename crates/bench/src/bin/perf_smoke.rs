//! Decode-pipeline performance smoke: runs the Monte-Carlo LER engine on
//! fixed-seed circuit-noise workloads (`--configs`, default d ∈ {7, 11, 15};
//! pass `--configs 7,11,15,21` to opt into the d = 21 row) and writes
//! per-config throughput/phase-timing numbers to a JSON file
//! (`BENCH_decode.json` at the repo root by default), stamped with the
//! current git commit so a checked-in file is traceable to the tree that
//! produced it.
//!
//! The decode stack is the production tiered pipeline: empty shots skip
//! decoding outright (tier 0), certifiable sparse shots resolve in the
//! predecoder (tier 1), dense shots are flood-decomposed by the cluster
//! tier (fully-peeled shots never reach a decoder call), and only the
//! residue reaches the union-find decoder. Per-tier shot counters, the
//! sample/extract/predecode/cluster/decode timing split, the defect-count
//! and cluster-size histograms, and per-tier per-shot latency percentiles
//! (from the engine's observability sink) all land in the JSON. A tier
//! that never fired contributes **no** percentile fields — consumers
//! (including `--compare`) must treat the fields as optional rather than
//! read zeros that were never measured.
//!
//! The binary also asserts the engine's accounting invariants and exits
//! nonzero when they fail: the four tiers must partition the shot budget,
//! the defect histogram must sum to the shots, the cluster-size histogram
//! must sum to `clusters_total`, and the phase timers must fit the wall
//! budget.
//!
//! Flags: `--shots N` (shot budget per config, default 100 000),
//! `--threads N` (worker count, default auto), `--configs LIST`
//! (comma-separated distances), `--cluster-tier auto|on|off`,
//! `--cluster-gate-threshold X` (mean defects/shot above which the `auto`
//! gate runs the cluster decomposition; default
//! `caliqec_match::CLUSTER_GATE_MIN_MEAN_DEFECTS`), `--out PATH`,
//! `--label TEXT` (free-form run label stamped into the JSON),
//! `--compare OLD.json` (after running, print a per-config speedup table
//! against a previously written file — a missing, corrupt, or
//! wrong-schema baseline is a clean error and a nonzero exit, not a
//! panic; see `caliqec_bench::compare` — and warn on stderr when decode
//! time or a p99 latency regressed by more than 10%).
//! Results are deterministic in the shot budget; timings obviously are not.

use caliqec_bench::compare::{compare_table, load_baseline, regression_warnings};
use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, ClusterGate, LerEngine, SampleOptions, Tiered, UnionFindDecoder,
};
use caliqec_obs::{Hist, HistSnapshot, ObsSink};
use caliqec_stab::CompiledCircuit;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Warn when a compared percentile or decode time regresses by more than
/// this ratio (new > old × threshold).
const REGRESSION_WARN_RATIO: f64 = 1.10;

/// Best-effort current commit hash; "unknown" outside a git checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders a tier's latency percentiles as JSON fields, or nothing at all
/// when the tier never fired — absent fields, not zeros.
fn percentile_fields(prefix: &str, h: &HistSnapshot) -> String {
    if h.count == 0 {
        return String::new();
    }
    let us = |q: f64| h.quantile_nanos(q) / 1e3;
    format!(
        concat!(
            "\"{0}_p50_us\": {1:.3}, \"{0}_p95_us\": {2:.3}, ",
            "\"{0}_p99_us\": {3:.3}, \"{0}_max_us\": {4:.3}, "
        ),
        prefix,
        us(0.50),
        us(0.95),
        us(0.99),
        h.max_nanos as f64 / 1e3,
    )
}

/// Renders a histogram slice as a JSON array body.
fn histogram_body(hist: &[u64]) -> String {
    let mut out = String::new();
    for (j, count) in hist.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        write!(out, "{count}").expect("write to string");
    }
    out
}

fn main() -> ExitCode {
    let shots = caliqec_bench::usize_from_args("shots", 100_000);
    let threads = caliqec_bench::threads_from_args();
    let out = caliqec_bench::string_from_args("out", "BENCH_decode.json");
    let label = caliqec_bench::string_from_args("label", "");
    let compare = caliqec_bench::string_from_args("compare", "");
    let configs_arg = caliqec_bench::string_from_args("configs", "7,11,15");
    let cluster_tier = caliqec_bench::string_from_args("cluster-tier", "auto");
    let gate_threshold = caliqec_bench::f64_from_args(
        "cluster-gate-threshold",
        caliqec_match::CLUSTER_GATE_MIN_MEAN_DEFECTS,
    );
    let p = 1e-3;

    let gate = match cluster_tier.as_str() {
        "auto" => ClusterGate::Auto,
        "on" => ClusterGate::On,
        "off" => ClusterGate::Off,
        other => {
            eprintln!("perf_smoke: error: --cluster-tier wants auto|on|off, got {other:?}");
            return ExitCode::from(2);
        }
    };
    if !gate_threshold.is_finite() || gate_threshold < 0.0 {
        eprintln!(
            "perf_smoke: error: --cluster-gate-threshold wants a finite non-negative \
             number, got {gate_threshold}"
        );
        return ExitCode::from(2);
    }

    let mut distances = Vec::new();
    for part in configs_arg.split(',') {
        match part.trim().parse::<usize>() {
            Ok(d) if d >= 3 && d % 2 == 1 => distances.push(d),
            _ => {
                eprintln!(
                    "perf_smoke: error: --configs wants comma-separated odd distances >= 3, \
                     got {part:?}"
                );
                return ExitCode::from(2);
            }
        }
    }

    let mut configs = String::new();
    let mut rows = 0usize;
    for d in distances.iter().copied() {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            d,
            MemoryBasis::Z,
        );
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        // Every config gets a second row pinned to 8 workers so the
        // checked-in JSON tracks parallel scaling across commits (skipped
        // when the primary row already resolves to 8 threads — the results
        // would be byte-identical). Both rows share a seed, so matching
        // shots/failures double as a thread-determinism check.
        let mut thread_rows = vec![threads];
        if LerEngine::new(threads).threads() != 8 {
            thread_rows.push(8);
        }
        for row_threads in thread_rows {
            // One sink per row so the per-tier latency histograms don't mix
            // distances or thread counts; observation is passive, so the
            // estimate is bit-identical to an uninstrumented engine.
            let sink = ObsSink::enabled();
            let engine = LerEngine::new(row_threads).with_obs(sink.clone());
            eprintln!(
                "perf_smoke: d={d}, {shots} shots, {} threads, cluster tier {cluster_tier}...",
                engine.threads()
            );
            let run = engine.estimate(
                &compiled,
                &Tiered::new(&graph, {
                    let graph = graph.clone();
                    move || UnionFindDecoder::new(graph.clone())
                })
                .with_cluster_gate(gate)
                .with_cluster_gate_threshold(gate_threshold),
                SampleOptions {
                    min_shots: shots,
                    ..Default::default()
                },
                0xC0FFEE + d as u64,
            );
            eprintln!(
                "perf_smoke: d={d}: {:.0} shots/s (sample {:.3}s, extract {:.3}s, \
             predecode {:.3}s, cluster {:.3}s, decode {:.3}s; tier0 {}, predecoded {}, \
             clustered {}, residual {})",
                run.shots_per_sec(),
                run.sample_seconds,
                run.extract_seconds,
                run.predecode_seconds,
                run.cluster_seconds,
                run.decode_seconds,
                run.tier0_shots,
                run.predecoded_shots,
                run.clustered_shots,
                run.residual_shots,
            );
            // Accounting invariants: the four tiers partition the shot budget
            // and each histogram sums to the population it claims to cover. A
            // violation means the engine's tier dispatch is broken, which
            // would silently skew every number this binary reports.
            let partition =
                run.tier0_shots + run.predecoded_shots + run.clustered_shots + run.residual_shots;
            if partition != run.estimate.shots {
                eprintln!(
                    "perf_smoke: error: tier partition broke at d={d}: \
                 {} + {} + {} + {} = {partition} != {} shots",
                    run.tier0_shots,
                    run.predecoded_shots,
                    run.clustered_shots,
                    run.residual_shots,
                    run.estimate.shots
                );
                return ExitCode::from(3);
            }
            let defect_sum: u64 = run.defect_histogram.iter().sum();
            if defect_sum != run.estimate.shots as u64 {
                eprintln!(
                    "perf_smoke: error: defect histogram sums to {defect_sum}, \
                 expected {} shots at d={d}",
                    run.estimate.shots
                );
                return ExitCode::from(3);
            }
            let cluster_sum: u64 = run.cluster_size_histogram.iter().sum();
            if cluster_sum != run.clusters_total {
                eprintln!(
                    "perf_smoke: error: cluster-size histogram sums to {cluster_sum}, \
                 expected clusters_total = {} at d={d}",
                    run.clusters_total
                );
                return ExitCode::from(3);
            }
            // The phase timers partition each chunk's wall clock per worker, so
            // their sum across workers can never exceed workers × run wall
            // (5% slack for timer granularity).
            let phase_sum = run.sample_seconds
                + run.extract_seconds
                + run.predecode_seconds
                + run.cluster_seconds
                + run.decode_seconds;
            if phase_sum > run.threads as f64 * run.wall_seconds * 1.05 {
                eprintln!(
                    "perf_smoke: error: phase timers exceed the wall budget: \
                 {phase_sum:.6}s over {} × {:.6}s — timing attribution is broken",
                    run.threads, run.wall_seconds
                );
                return ExitCode::from(1);
            }
            let snap = sink.snapshot();
            let tier1 = snap
                .hist(Hist::PredecodeShot)
                .cloned()
                .unwrap_or_else(|| HistSnapshot::empty(Hist::PredecodeShot.name()));
            let cluster_hist = snap
                .hist(Hist::ClusterShot)
                .cloned()
                .unwrap_or_else(|| HistSnapshot::empty(Hist::ClusterShot.name()));
            let tier2 = snap.decode_shot_hist();
            if rows > 0 {
                configs.push_str(",\n");
            }
            rows += 1;
            write!(
                configs,
                concat!(
                    "    {{\"d\": {}, \"p\": {}, \"rounds\": {}, \"threads\": {}, ",
                    "\"shots\": {}, \"failures\": {}, \"shots_per_sec\": {:.1}, ",
                    "\"wall_seconds\": {:.6}, \"sample_seconds\": {:.6}, ",
                    "\"extract_seconds\": {:.6}, \"predecode_seconds\": {:.6}, ",
                    "\"cluster_seconds\": {:.6}, ",
                    "\"decode_seconds\": {:.6}, \"tier0_shots\": {}, ",
                    "\"predecoded_shots\": {}, \"predecoded_defects\": {}, ",
                    "\"clustered_shots\": {}, \"clustered_defects\": {}, ",
                    "\"clusters_total\": {}, ",
                    "\"cluster_gate_on\": {}, \"cluster_gate_off\": {}, ",
                    "\"residual_shots\": {}, \"reweight_seconds\": {:.6}, ",
                    "\"epochs\": {}, ",
                    "{}{}{}",
                    "\"defect_histogram\": [{}], ",
                    "\"cluster_size_histogram\": [{}]}}"
                ),
                d,
                p,
                d,
                run.threads,
                run.estimate.shots,
                run.estimate.failures,
                run.shots_per_sec(),
                run.wall_seconds,
                run.sample_seconds,
                run.extract_seconds,
                run.predecode_seconds,
                run.cluster_seconds,
                run.decode_seconds,
                run.tier0_shots,
                run.predecoded_shots,
                run.predecoded_defects,
                run.clustered_shots,
                run.clustered_defects,
                run.clusters_total,
                run.cluster_gate_on,
                run.cluster_gate_off,
                run.residual_shots,
                run.reweight_seconds,
                run.epochs,
                percentile_fields("tier1", &tier1),
                percentile_fields("cluster", &cluster_hist),
                percentile_fields("tier2", &tier2),
                histogram_body(&run.defect_histogram),
                histogram_body(&run.cluster_size_histogram),
            )
            .expect("write to string");
        }
    }

    let json = format!(
        "{{\n  \"commit\": \"{}\",\n  \"label\": \"{}\",\n  \"configs\": [\n{configs}\n  ]\n}}\n",
        git_commit(),
        label.replace('"', "'"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("perf_smoke: error: writing {out}: {e}");
        return ExitCode::from(4);
    }
    eprintln!("perf_smoke: wrote {out}");

    if !compare.is_empty() {
        let old = match load_baseline(&compare) {
            Ok(old) => old,
            Err(e) => {
                eprintln!("perf_smoke: error: {e}");
                return ExitCode::from(4);
            }
        };
        println!("perf_smoke: this run vs {compare}");
        print!("{}", compare_table(&json, &old));
        for warning in regression_warnings(&json, &old, REGRESSION_WARN_RATIO) {
            eprintln!("perf_smoke: warning: {warning}");
        }
    }
    ExitCode::SUCCESS
}
