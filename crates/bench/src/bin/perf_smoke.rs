//! Decode-pipeline performance smoke: runs the Monte-Carlo LER engine on
//! fixed-seed d ∈ {7, 11, 15} circuit-noise workloads and writes per-config
//! throughput/phase-timing numbers to a JSON file (`BENCH_decode.json` at
//! the repo root by default).
//!
//! Flags: `--shots N` (shot budget per config, default 100 000),
//! `--threads N` (worker count, default auto), `--out PATH`.
//! Results are deterministic in the shot budget; timings obviously are not.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{graph_for_circuit, LerEngine, SampleOptions, UnionFindDecoder};
use caliqec_stab::CompiledCircuit;
use std::fmt::Write as _;

fn main() {
    let shots = caliqec_bench::usize_from_args("shots", 100_000);
    let threads = caliqec_bench::threads_from_args();
    let out = caliqec_bench::string_from_args("out", "BENCH_decode.json");
    let engine = LerEngine::new(threads);
    let p = 1e-3;

    let mut configs = String::new();
    for (i, d) in [7usize, 11, 15].into_iter().enumerate() {
        eprintln!(
            "perf_smoke: d={d}, {shots} shots, {} threads...",
            engine.threads()
        );
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            d,
            MemoryBasis::Z,
        );
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        let run = engine.estimate(
            &compiled,
            &|| UnionFindDecoder::new(graph.clone()),
            SampleOptions {
                min_shots: shots,
                ..Default::default()
            },
            0xC0FFEE + d as u64,
        );
        eprintln!(
            "perf_smoke: d={d}: {:.0} shots/s (sample {:.3}s, extract {:.3}s, decode {:.3}s)",
            run.shots_per_sec(),
            run.sample_seconds,
            run.extract_seconds,
            run.decode_seconds
        );
        if i > 0 {
            configs.push_str(",\n");
        }
        write!(
            configs,
            concat!(
                "    {{\"d\": {}, \"p\": {}, \"rounds\": {}, \"threads\": {}, ",
                "\"shots\": {}, \"failures\": {}, \"shots_per_sec\": {:.1}, ",
                "\"wall_seconds\": {:.6}, \"sample_seconds\": {:.6}, ",
                "\"extract_seconds\": {:.6}, \"decode_seconds\": {:.6}}}"
            ),
            d,
            p,
            d,
            run.threads,
            run.estimate.shots,
            run.estimate.failures,
            run.shots_per_sec(),
            run.wall_seconds,
            run.sample_seconds,
            run.extract_seconds,
            run.decode_seconds
        )
        .expect("write to string");
    }

    let json = format!("{{\n  \"configs\": [\n{configs}\n  ]\n}}\n");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("perf_smoke: wrote {out}");
}
