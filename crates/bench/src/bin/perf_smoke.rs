//! Decode-pipeline performance smoke: runs the Monte-Carlo LER engine on
//! fixed-seed d ∈ {7, 11, 15} circuit-noise workloads and writes per-config
//! throughput/phase-timing numbers to a JSON file (`BENCH_decode.json` at
//! the repo root by default), stamped with the current git commit so a
//! checked-in file is traceable to the tree that produced it.
//!
//! The decode stack is the production two-tier pipeline: empty shots skip
//! decoding outright (tier 0), certifiable sparse shots resolve in the
//! predecoder (tier 1), and only the residue reaches the union-find
//! decoder. Per-tier shot counters, the predecode/decode timing split, the
//! defect-count histogram, and per-tier per-shot latency percentiles
//! (`tier1_p50_us`..`tier2_p99_us`, from the engine's observability sink)
//! all land in the JSON.
//!
//! Flags: `--shots N` (shot budget per config, default 100 000),
//! `--threads N` (worker count, default auto), `--out PATH`,
//! `--label TEXT` (free-form run label stamped into the JSON),
//! `--compare OLD.json` (after running, print a per-config speedup table
//! against a previously written file — a missing, corrupt, or
//! wrong-schema baseline is a clean error and a nonzero exit, not a
//! panic; see `caliqec_bench::compare` — and warn on stderr when decode
//! time or a p99 latency regressed by more than 10%).
//! Results are deterministic in the shot budget; timings obviously are not.

use caliqec_bench::compare::{compare_table, load_baseline, regression_warnings};
use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{graph_for_circuit, LerEngine, SampleOptions, Tiered, UnionFindDecoder};
use caliqec_obs::{Hist, ObsSink};
use caliqec_stab::CompiledCircuit;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Warn when a compared percentile or decode time regresses by more than
/// this ratio (new > old × threshold).
const REGRESSION_WARN_RATIO: f64 = 1.10;

/// Best-effort current commit hash; "unknown" outside a git checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> ExitCode {
    let shots = caliqec_bench::usize_from_args("shots", 100_000);
    let threads = caliqec_bench::threads_from_args();
    let out = caliqec_bench::string_from_args("out", "BENCH_decode.json");
    let label = caliqec_bench::string_from_args("label", "");
    let compare = caliqec_bench::string_from_args("compare", "");
    let p = 1e-3;

    let mut configs = String::new();
    for (i, d) in [7usize, 11, 15].into_iter().enumerate() {
        // One sink per config so the per-tier latency histograms don't mix
        // distances; observation is passive, so the estimate is
        // bit-identical to an uninstrumented engine.
        let sink = ObsSink::enabled();
        let engine = LerEngine::new(threads).with_obs(sink.clone());
        eprintln!(
            "perf_smoke: d={d}, {shots} shots, {} threads...",
            engine.threads()
        );
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            d,
            MemoryBasis::Z,
        );
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        let run = engine.estimate(
            &compiled,
            &Tiered::new(&graph, {
                let graph = graph.clone();
                move || UnionFindDecoder::new(graph.clone())
            }),
            SampleOptions {
                min_shots: shots,
                ..Default::default()
            },
            0xC0FFEE + d as u64,
        );
        eprintln!(
            "perf_smoke: d={d}: {:.0} shots/s (sample {:.3}s, extract {:.3}s, \
             predecode {:.3}s, decode {:.3}s; tier0 {}, predecoded {}, residual {})",
            run.shots_per_sec(),
            run.sample_seconds,
            run.extract_seconds,
            run.predecode_seconds,
            run.decode_seconds,
            run.tier0_shots,
            run.predecoded_shots,
            run.residual_shots,
        );
        // The phase timers partition each chunk's wall clock per worker, so
        // their sum across workers can never exceed workers × run wall
        // (5% slack for timer granularity).
        let phase_sum =
            run.sample_seconds + run.extract_seconds + run.predecode_seconds + run.decode_seconds;
        if phase_sum > run.threads as f64 * run.wall_seconds * 1.05 {
            eprintln!(
                "perf_smoke: error: phase timers exceed the wall budget: \
                 {phase_sum:.6}s over {} × {:.6}s — timing attribution is broken",
                run.threads, run.wall_seconds
            );
            return ExitCode::from(1);
        }
        let snap = sink.snapshot();
        let tier1 = snap
            .hist(Hist::PredecodeShot)
            .cloned()
            .unwrap_or_else(|| caliqec_obs::HistSnapshot::empty(Hist::PredecodeShot.name()));
        let tier2 = snap.decode_shot_hist();
        let us = |h: &caliqec_obs::HistSnapshot, q: f64| h.quantile_nanos(q) / 1e3;
        if i > 0 {
            configs.push_str(",\n");
        }
        let mut histogram = String::new();
        for (j, count) in run.defect_histogram.iter().enumerate() {
            if j > 0 {
                histogram.push_str(", ");
            }
            write!(histogram, "{count}").expect("write to string");
        }
        write!(
            configs,
            concat!(
                "    {{\"d\": {}, \"p\": {}, \"rounds\": {}, \"threads\": {}, ",
                "\"shots\": {}, \"failures\": {}, \"shots_per_sec\": {:.1}, ",
                "\"wall_seconds\": {:.6}, \"sample_seconds\": {:.6}, ",
                "\"extract_seconds\": {:.6}, \"predecode_seconds\": {:.6}, ",
                "\"decode_seconds\": {:.6}, \"tier0_shots\": {}, ",
                "\"predecoded_shots\": {}, \"predecoded_defects\": {}, ",
                "\"residual_shots\": {}, \"reweight_seconds\": {:.6}, ",
                "\"epochs\": {}, ",
                "\"tier1_p50_us\": {:.3}, \"tier1_p95_us\": {:.3}, ",
                "\"tier1_p99_us\": {:.3}, \"tier2_p50_us\": {:.3}, ",
                "\"tier2_p95_us\": {:.3}, \"tier2_p99_us\": {:.3}, ",
                "\"defect_histogram\": [{}]}}"
            ),
            d,
            p,
            d,
            run.threads,
            run.estimate.shots,
            run.estimate.failures,
            run.shots_per_sec(),
            run.wall_seconds,
            run.sample_seconds,
            run.extract_seconds,
            run.predecode_seconds,
            run.decode_seconds,
            run.tier0_shots,
            run.predecoded_shots,
            run.predecoded_defects,
            run.residual_shots,
            run.reweight_seconds,
            run.epochs,
            us(&tier1, 0.50),
            us(&tier1, 0.95),
            us(&tier1, 0.99),
            us(&tier2, 0.50),
            us(&tier2, 0.95),
            us(&tier2, 0.99),
            histogram,
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"commit\": \"{}\",\n  \"label\": \"{}\",\n  \"configs\": [\n{configs}\n  ]\n}}\n",
        git_commit(),
        label.replace('"', "'"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("perf_smoke: error: writing {out}: {e}");
        return ExitCode::from(4);
    }
    eprintln!("perf_smoke: wrote {out}");

    if !compare.is_empty() {
        let old = match load_baseline(&compare) {
            Ok(old) => old,
            Err(e) => {
                eprintln!("perf_smoke: error: {e}");
                return ExitCode::from(4);
            }
        };
        println!("perf_smoke: this run vs {compare}");
        print!("{}", compare_table(&json, &old));
        for warning in regression_warnings(&json, &old, REGRESSION_WARN_RATIO) {
            eprintln!("perf_smoke: warning: {warning}");
        }
    }
    ExitCode::SUCCESS
}
