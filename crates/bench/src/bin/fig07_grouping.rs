//! Regenerates the paper's Figure 07 (see the experiments module docs).
fn main() {
    caliqec_bench::quiet_by_default();
    println!(
        "{}",
        caliqec_bench::experiments::fig07::run(&Default::default())
    );
}
