//! Deterministic load generator for the streaming decode service: drives
//! `caliqec_match::StreamingDecoder` through open-loop arrival schedules
//! and writes the degradation profile to a JSON file (`BENCH_stream.json`
//! at the repo root by default), stamped with the current git commit.
//!
//! Three scenarios, all from fixed seeds:
//!
//! - `steady`: paced arrivals with a generous queue bound and no deadline
//!   — the service must decode every window (no shed, no rejection).
//! - `overload`: every tenant floods windows back-to-back into a short
//!   queue under an armed deadline — arrival far exceeds sustained
//!   capacity, so the service must shed via the declared ladder and/or
//!   reject at admission while keeping the ingested = decoded + shed +
//!   deferred partition exact.
//! - `bursty`: one tenant floods (a `burst` injection) while the others
//!   stay paced — any backpressure rejections land on the bursty tenant
//!   while the well-behaved tenants keep decoding.
//!
//! Decode masks are deterministic in `(tenant, window, seed)`; only
//! latency quantiles and shed/reject counts vary run to run, and those
//! are what this binary exists to track.
//!
//! Flags: `--tenants N` (default 8), `--windows W` per tenant (default
//! 32), `--workers T` (default 4), `--distance D` (default 3),
//! `--deadline-us U` for the overload/bursty scenarios (default 500),
//! `--out PATH`, `--label TEXT`.
//!
//! Exit codes: 0 success, 1 accounting-contract violation, 4 cannot
//! write the report.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, loopback_serve, FaultPlan, LoopbackOptions, MatchingGraph, ServiceHealth,
    StreamConfig, TenantSpec, Tiered, UnionFindDecoder,
};
use caliqec_obs::ObsSink;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

/// Best-effort current commit hash; "unknown" outside a git checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

type Factory = Tiered<Box<dyn Fn() -> UnionFindDecoder + Send + Sync>>;

fn tenant_specs(graph: &MatchingGraph, tenants: usize) -> Vec<TenantSpec<Factory>> {
    (0..tenants)
        .map(|_| {
            let g = graph.clone();
            let factory: Box<dyn Fn() -> UnionFindDecoder + Send + Sync> =
                Box::new(move || UnionFindDecoder::new(g.clone()));
            TenantSpec {
                factory: Tiered::new(graph, factory),
                detectors: graph.num_detectors(),
            }
        })
        .collect()
}

struct Scenario {
    name: &'static str,
    config: StreamConfig,
    opts: LoopbackOptions,
}

struct Outcome {
    name: &'static str,
    health: ServiceHealth,
    shots_scored: u64,
    failures: u64,
    windows_rejected: u64,
    violations: Vec<String>,
}

fn main() -> ExitCode {
    let tenants = caliqec_bench::usize_from_args("tenants", 8);
    let windows = caliqec_bench::usize_from_args("windows", 32) as u64;
    let workers = caliqec_bench::usize_from_args("workers", 4);
    let d = caliqec_bench::usize_from_args("distance", 3);
    let deadline_us = caliqec_bench::usize_from_args("deadline-us", 500) as u64;
    let out = caliqec_bench::string_from_args("out", "BENCH_stream.json");
    let label = caliqec_bench::string_from_args("label", "");
    let seed = 0x57E4_u64;

    let mem = memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(2e-3),
        d,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let circuits: Vec<_> = (0..tenants).map(|_| mem.circuit.clone()).collect();
    let deadline = Duration::from_micros(deadline_us.max(1));

    let scenarios = [
        Scenario {
            name: "steady",
            config: StreamConfig {
                workers,
                queue_bound: (windows as usize).max(1),
                deadline: None,
                ..StreamConfig::default()
            },
            opts: LoopbackOptions {
                windows_per_tenant: windows,
                rounds_per_window: d.min(graph.num_detectors()),
                gap: Duration::from_micros(50),
                base_seed: seed,
            },
        },
        Scenario {
            name: "overload",
            config: StreamConfig {
                workers,
                queue_bound: 2,
                deadline: Some(deadline),
                ..StreamConfig::default()
            },
            opts: LoopbackOptions {
                windows_per_tenant: windows,
                rounds_per_window: d.min(graph.num_detectors()),
                gap: Duration::ZERO,
                base_seed: seed,
            },
        },
        Scenario {
            name: "bursty",
            config: StreamConfig {
                workers,
                queue_bound: 2,
                deadline: Some(deadline),
                faults: Some(FaultPlan::new().burst_arrival_at(0)),
                ..StreamConfig::default()
            },
            opts: LoopbackOptions {
                windows_per_tenant: windows,
                rounds_per_window: d.min(graph.num_detectors()),
                gap: Duration::from_micros(50),
                base_seed: seed,
            },
        },
    ];

    let mut outcomes = Vec::new();
    for sc in scenarios {
        eprintln!(
            "stream_load: {} — {tenants} tenants x {windows} windows, {workers} workers...",
            sc.name
        );
        let specs = tenant_specs(&graph, tenants);
        let (report, driver) =
            match loopback_serve(specs, &circuits, sc.config, &sc.opts, ObsSink::enabled()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("stream_load: error: {} failed validation: {e}", sc.name);
                    return ExitCode::from(1);
                }
            };
        let h = report.health;
        let mut violations = Vec::new();
        if h.rounds_pending() != 0 {
            violations.push(format!("{} rounds pending after drain", h.rounds_pending()));
        }
        for t in &h.tenants {
            if t.rounds_decoded + t.rounds_shed + t.rounds_deferred != t.rounds_ingested {
                violations.push(format!(
                    "tenant {} partition broken: {} + {} + {} != {}",
                    t.tenant, t.rounds_decoded, t.rounds_shed, t.rounds_deferred, t.rounds_ingested
                ));
            }
        }
        if sc.name == "steady"
            && (h.windows_shed + h.windows_deferred > 0 || driver.windows_rejected > 0)
        {
            violations.push(format!(
                "steady scenario degraded: {} shed, {} deferred, {} rejected",
                h.windows_shed, h.windows_deferred, driver.windows_rejected
            ));
        }
        eprintln!(
            "stream_load: {}: decoded {} / shed {} / deferred {} windows, {} rejected, \
             p99 {:.0}us, {} failures / {} shots",
            sc.name,
            h.windows_decoded,
            h.windows_shed,
            h.windows_deferred,
            driver.windows_rejected,
            h.round_latency_p99_us,
            driver.failures,
            driver.shots_scored,
        );
        outcomes.push(Outcome {
            name: sc.name,
            health: h,
            shots_scored: driver.shots_scored,
            failures: driver.failures,
            windows_rejected: driver.windows_rejected,
            violations,
        });
    }

    let json = report_json(&label, tenants, windows, workers, d, &outcomes);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("stream_load: error: writing {out}: {e}");
        return ExitCode::from(4);
    }
    eprintln!("stream_load: wrote {out}");

    let violations: Vec<&String> = outcomes.iter().flat_map(|o| o.violations.iter()).collect();
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        for v in violations {
            eprintln!("stream_load: violation: {v}");
        }
        ExitCode::from(1)
    }
}

fn report_json(
    label: &str,
    tenants: usize,
    windows: u64,
    workers: usize,
    d: usize,
    outcomes: &[Outcome],
) -> String {
    let mut body = String::new();
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        let h = &o.health;
        let (ing, dec, shed, def, rej) = h.tenants.iter().fold((0, 0, 0, 0, 0), |a, t| {
            (
                a.0 + t.rounds_ingested,
                a.1 + t.rounds_decoded,
                a.2 + t.rounds_shed,
                a.3 + t.rounds_deferred,
                a.4 + t.rounds_rejected,
            )
        });
        write!(
            body,
            concat!(
                "    {{\"scenario\": \"{}\", \"windows_decoded\": {}, ",
                "\"windows_shed\": {}, \"windows_deferred\": {}, ",
                "\"windows_rejected\": {}, \"wedges\": {}, \"retries\": {}, ",
                "\"queue_peak\": {}, \"rounds_ingested\": {}, ",
                "\"rounds_decoded\": {}, \"rounds_shed\": {}, ",
                "\"rounds_deferred\": {}, \"rounds_rejected\": {}, ",
                "\"partition_ok\": {}, \"shots_scored\": {}, \"failures\": {}, ",
                "\"round_latency_us\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}}}"
            ),
            o.name,
            h.windows_decoded,
            h.windows_shed,
            h.windows_deferred,
            o.windows_rejected,
            h.wedges,
            h.retries,
            h.queue_peak,
            ing,
            dec,
            shed,
            def,
            rej,
            o.violations.is_empty(),
            o.shots_scored,
            o.failures,
            h.round_latency_p50_us,
            h.round_latency_p95_us,
            h.round_latency_p99_us,
        )
        .expect("write to string");
    }
    format!(
        concat!(
            "{{\n  \"commit\": \"{}\",\n  \"label\": \"{}\",\n",
            "  \"tenants\": {},\n  \"windows_per_tenant\": {},\n",
            "  \"workers\": {},\n  \"distance\": {},\n",
            "  \"scenarios\": [\n{}\n  ]\n}}\n"
        ),
        git_commit(),
        label.replace('"', "'"),
        tenants,
        windows,
        workers,
        d,
        body,
    )
}
