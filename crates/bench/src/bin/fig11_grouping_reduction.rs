//! Regenerates the paper's Figure 11 (see the experiments module docs).
fn main() {
    caliqec_bench::quiet_by_default();
    println!(
        "{}",
        caliqec_bench::experiments::fig11::run(&Default::default())
    );
}
