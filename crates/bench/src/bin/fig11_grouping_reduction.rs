//! Regenerates the paper's Figure 11 (see the experiments module docs).
fn main() {
    println!(
        "{}",
        caliqec_bench::experiments::fig11::run(&Default::default())
    );
}
