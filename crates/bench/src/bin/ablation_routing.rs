//! Regenerates the routing experiment (see the experiments module docs).
fn main() {
    println!(
        "{}",
        caliqec_bench::experiments::routing::run(&Default::default())
    );
}
