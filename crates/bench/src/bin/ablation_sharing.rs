//! Regenerates the sharing experiment (see the experiments module docs).
fn main() {
    println!(
        "{}",
        caliqec_bench::experiments::sharing::run(&Default::default())
    );
}
