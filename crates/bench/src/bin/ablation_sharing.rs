//! Regenerates the sharing experiment (see the experiments module docs).
fn main() {
    caliqec_bench::quiet_by_default();
    println!(
        "{}",
        caliqec_bench::experiments::sharing::run(&Default::default())
    );
}
