//! Rare-event LER experiment: plain Monte Carlo vs importance sampling,
//! shots-to-target-CI, at d ∈ {11, 15}, p = 1e-3 (`results/rare_event.json`).
//!
//! **Operating point.** The measured quantity is the logical error
//! probability of a *few-round* memory experiment (`--rounds`, default 2)
//! — the per-calibration-comparison quantity the runtime resolves point by
//! point — not the full d-round experiment of `BENCH_decode.json`. The
//! choice is the method's validity domain, not convenience: a uniform rate
//! tilt `p → β·p` caps its variance gain at `max_β β^k ·
//! exp(−μ(β + 1/β − 2))` where k is the minimal fault weight of a logical
//! error (≈ (d+1)/2) and μ the mean faults per shot (DESIGN.md §13). At
//! rounds = d, μ ≈ 10 > k = 6 for d = 11 and *no* β beats plain MC by more
//! than ~3× — the pilot sweep reproduces that collapse empirically (ESS of
//! a few shots out of 20 k at β ≥ 3). At rounds = 2, μ ≈ 1.8 ≪ k and the
//! same machinery honestly buys orders of magnitude. Both the plain
//! baseline and the IS runs use the identical circuit, so every ratio
//! below is apples to apples.
//!
//! For each distance the binary runs:
//!
//! 1. a **plain-MC reference** at a fixed budget (`--plain-shots`, default
//!    100 000) — sub-threshold this records *zero* failures, which is the
//!    point: the LER is unmeasurable at this budget;
//! 2. a **β sweep pilot** (`β ∈ {2, 3, 4, 5, 6}`, `--pilot-shots` each,
//!    default 50 000): every boost factor gets a fixed-budget
//!    importance-sampled run, scored by the relative CI it achieved — the
//!    auto-tuner keeps the β with the smallest relative half-width
//!    (low β under-boosts and starves the estimator of failures; high β
//!    inflates the weight variance until ESS collapses);
//! 3. a **full importance-sampled run** at the winning β with the engine's
//!    CI stopping rule armed (`--target-rse`, default 0.1): the run stops
//!    at the deterministic chunk prefix where the 95% CI half-width falls
//!    to the target fraction of the estimate, or at `--max-shots`.
//!
//! The JSON row reports both measured costs and the plain-MC **projection**
//! to the same relative CI — `n = (1.96/rse)² · (1−p̂)/p̂` shots at the
//! measured plain-MC shot rate — because the direct plain-MC experiment is
//! precisely the one that is infeasible (that infeasibility ratio is the
//! headline result). All runs are seeded and thread-count independent;
//! wall times obviously are not.
//!
//! Flags: `--threads N`, `--out PATH`, `--rounds N`, `--target-rse F`,
//! `--pilot-shots N`, `--plain-shots N`, `--max-shots N`.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, ClusterGate, EngineRun, LerEngine, RareOptions, SampleOptions, Tiered,
    UnionFindDecoder,
};
use caliqec_stab::CompiledCircuit;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Boost factors swept by the pilot.
const BETAS: [f64; 5] = [2.0, 3.0, 4.0, 5.0, 6.0];

/// Achieved relative CI half-width of a run (`inf` when the estimate is
/// zero — an estimator that saw no failure mass has no precision at all).
fn relative_ci(run: &EngineRun) -> f64 {
    let p = run.ler();
    if p > 0.0 {
        run.ci_halfwidth / p
    } else {
        f64::INFINITY
    }
}

fn main() -> ExitCode {
    caliqec_bench::quiet_by_default();
    let threads = caliqec_bench::threads_from_args();
    let out = caliqec_bench::string_from_args("out", "results/rare_event.json");
    let target_rse: f64 = match caliqec_bench::string_from_args("target-rse", "0.1").parse() {
        Ok(v) if v > 0.0 => v,
        _ => {
            eprintln!("rare_event: error: --target-rse wants a positive number");
            return ExitCode::from(2);
        }
    };
    let pilot_shots = caliqec_bench::usize_from_args("pilot-shots", 50_000);
    let plain_shots = caliqec_bench::usize_from_args("plain-shots", 100_000);
    let max_shots = caliqec_bench::usize_from_args("max-shots", 8_000_000);
    let rounds = caliqec_bench::usize_from_args("rounds", 2);
    let p = 1e-3;

    let mut rows = String::new();
    for (i, d) in [11usize, 15].into_iter().enumerate() {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(p),
            rounds,
            MemoryBasis::Z,
        );
        let compiled = CompiledCircuit::new(&mem.circuit);
        let graph = graph_for_circuit(&mem.circuit);
        let factory = Tiered::new(&graph, {
            let graph = graph.clone();
            move || UnionFindDecoder::new(graph.clone())
        })
        .with_cluster_gate(ClusterGate::Auto);
        let engine = LerEngine::new(threads);
        let seed = 0x0DD5EED + d as u64;

        eprintln!("rare_event: d={d}: plain MC, {plain_shots} shots...");
        let plain = engine.estimate(
            &compiled,
            &factory,
            SampleOptions {
                min_shots: plain_shots,
                ..Default::default()
            },
            seed,
        );
        eprintln!(
            "rare_event: d={d}: plain MC saw {} failures in {} shots ({:.1}s)",
            plain.estimate.failures, plain.estimate.shots, plain.wall_seconds
        );

        // β sweep pilot: fixed budget per β, scored by achieved relative CI.
        let mut pilot_json = String::new();
        let mut best: Option<(f64, f64)> = None; // (beta, relative ci)
        for (j, beta) in BETAS.into_iter().enumerate() {
            let run = engine.estimate_rare(
                &compiled,
                &factory,
                RareOptions {
                    boost_beta: beta,
                    target_rse: 0.0,
                    min_shots: pilot_shots,
                    ..Default::default()
                },
                seed,
            );
            let rse = relative_ci(&run);
            eprintln!(
                "rare_event: d={d}: pilot beta={beta}: ler={:.3e}, rse={:.3}, ess={:.0}/{}",
                run.ler(),
                rse,
                run.ess,
                run.estimate.shots
            );
            if j > 0 {
                pilot_json.push_str(", ");
            }
            write!(
                pilot_json,
                concat!(
                    "{{\"beta\": {}, \"ler\": {:e}, \"rse\": {}, ",
                    "\"ess\": {:.1}, \"raw_failures\": {}}}"
                ),
                beta,
                run.ler(),
                if rse.is_finite() {
                    format!("{rse:.4}")
                } else {
                    "null".to_string()
                },
                run.ess,
                run.estimate.failures,
            )
            .expect("write to string");
            if best.is_none_or(|(_, b)| rse < b) {
                best = Some((beta, rse));
            }
        }
        let (best_beta, best_rse) = best.expect("non-empty beta sweep");
        if !best_rse.is_finite() {
            eprintln!(
                "rare_event: error: no pilot beta produced failure mass at d={d} — \
                 raise --pilot-shots"
            );
            return ExitCode::from(3);
        }

        eprintln!(
            "rare_event: d={d}: full IS run at beta={best_beta}, target rse {target_rse}, \
             up to {max_shots} shots..."
        );
        let is_run = engine.estimate_rare(
            &compiled,
            &factory,
            RareOptions {
                boost_beta: best_beta,
                target_rse,
                min_shots: pilot_shots,
                max_shots,
                ..Default::default()
            },
            seed,
        );
        let p_hat = is_run.ler();
        let is_rse = relative_ci(&is_run);
        let healthy = p_hat > 0.0 && is_run.ci_halfwidth.is_finite();
        if !healthy {
            eprintln!("rare_event: error: IS run produced no finite CI'd estimate at d={d}");
            return ExitCode::from(3);
        }
        eprintln!(
            "rare_event: d={d}: IS ler={p_hat:.3e} +- {:.3e} (rse {is_rse:.3}) in {} shots, \
             {:.1}s, ess {:.0}",
            is_run.ci_halfwidth, is_run.estimate.shots, is_run.wall_seconds, is_run.ess
        );

        // Plain-MC projection to the *achieved* relative CI (so a budget-
        // capped IS run is still compared to its equal-precision plain
        // experiment, never to a better one).
        let project_rse = is_rse.max(target_rse);
        let plain_shots_to_ci =
            ((1.96 / (project_rse * p_hat)).powi(2) * p_hat * (1.0 - p_hat)).ceil();
        let plain_rate = plain.estimate.shots as f64 / plain.wall_seconds.max(1e-9);
        let plain_wall_to_ci = plain_shots_to_ci / plain_rate;
        let shots_ratio = plain_shots_to_ci / is_run.estimate.shots as f64;
        let wall_ratio = plain_wall_to_ci / is_run.wall_seconds.max(1e-9);
        eprintln!(
            "rare_event: d={d}: plain MC would need ~{plain_shots_to_ci:.3e} shots \
             (~{plain_wall_to_ci:.0}s) for the same CI: {shots_ratio:.0}x shots, \
             {wall_ratio:.0}x wall",
        );

        if i > 0 {
            rows.push_str(",\n");
        }
        write!(
            rows,
            concat!(
                "    {{\"d\": {}, \"p\": {}, \"rounds\": {}, \"target_rse\": {}, \"threads\": {},\n",
                "     \"plain\": {{\"shots\": {}, \"failures\": {}, \"wall_seconds\": {:.3}}},\n",
                "     \"pilot\": [{}],\n",
                "     \"best_beta\": {},\n",
                "     \"is\": {{\"shots\": {}, \"raw_failures\": {}, \"ler\": {:e}, ",
                "\"ci_halfwidth\": {:e}, \"rse\": {:.4}, \"ess\": {:.1}, ",
                "\"ci_met\": {}, \"wall_seconds\": {:.3}}},\n",
                "     \"plain_shots_to_same_ci\": {:e}, ",
                "\"plain_wall_to_same_ci_seconds\": {:.1}, ",
                "\"shots_ratio\": {:.1}, \"wall_ratio\": {:.1}}}"
            ),
            d,
            p,
            rounds,
            target_rse,
            is_run.threads,
            plain.estimate.shots,
            plain.estimate.failures,
            plain.wall_seconds,
            pilot_json,
            best_beta,
            is_run.estimate.shots,
            is_run.estimate.failures,
            p_hat,
            is_run.ci_halfwidth,
            is_rse,
            is_run.ess,
            is_rse <= target_rse + 1e-12,
            is_run.wall_seconds,
            plain_shots_to_ci,
            plain_wall_to_ci,
            shots_ratio,
            wall_ratio,
        )
        .expect("write to string");
    }

    let json = format!("{{\n  \"experiment\": \"rare_event\",\n  \"rows\": [\n{rows}\n  ]\n}}\n");
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("rare_event: error: writing {out}: {e}");
        return ExitCode::from(4);
    }
    eprintln!("rare_event: wrote {out}");
    print!("{json}");
    ExitCode::SUCCESS
}
