//! Drift-trajectory experiment: static vs calibration-aware decoding as
//! gate error rates drift away from the rates the decoder was weighted at.
//!
//! A rotated-surface-code memory patch drifts heterogeneously: data qubits
//! split (by coordinate parity) into a fast-drifting and a slow-drifting
//! population, each following the exponential drift model of
//! `caliqec_device::DriftModel` from the same freshly-calibrated rate
//! `p0`. At each swept time point both decode arms see the **identical**
//! syndrome stream — the circuit is sampled at the true drifted rates with
//! the same base seed and chunk schedule — and differ only in decode
//! weights:
//!
//! - **static**: the matching graph extracted at calibration time (`p0`
//!   everywhere), never updated — an empty epoch schedule.
//! - **drift-aware**: the same graph incrementally reweighted to the true
//!   per-gate rates at the time point via `MatchingGraph::reweight`
//!   (provenance-preserving, no DEM re-extraction), as a one-epoch
//!   schedule.
//!
//! Because the streams are paired, any LER gap is pure decode-prior
//! quality: the drift-aware arm must never lose, and must win once the
//! fast population's weights are badly stale. Results land in
//! `results/drift_trajectory.json`.
//!
//! Flags: `--shots N` (per point per arm, default 200 000), `--threads N`,
//! `--distance D` (default 5), `--out PATH`.

use caliqec_code::{
    drift_rate_table, memory_circuit, rotated_patch, MemoryBasis, NoiseModel, PatchLayout,
};
use caliqec_device::DriftModel;
use caliqec_match::{EpochSchedule, LerEngine, MatchingGraph, SampleOptions, UnionFindDecoder};
use caliqec_stab::{extract_dem, CompiledCircuit};
use std::fmt::Write as _;
use std::process::ExitCode;

const P0: f64 = 1.5e-3;
const T_FAST_HOURS: f64 = 10.0;
const T_SLOW_HOURS: f64 = 40.0;
const HOURS: [f64; 7] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
const SEED: u64 = 0xD81F_7A6E;

/// True noise model at `hours`: every data qubit drifted along its own
/// trajectory (fast or slow by coordinate parity), ancillas and couplers
/// held at `p0`. Overrides feed both the gate and idle channels, mirroring
/// how real drifted qubits degrade across the board.
fn drifted_noise(layout: &PatchLayout, hours: f64) -> NoiseModel {
    let mut noise = NoiseModel::uniform(P0);
    for &q in &layout.data {
        let t_drift = if (q.r + q.c) % 4 == 0 {
            T_FAST_HOURS
        } else {
            T_SLOW_HOURS
        };
        let model = DriftModel {
            p0: P0,
            t_drift_hours: t_drift,
        };
        noise.drift_qubit(q, model.p_at(hours).min(0.1));
    }
    noise
}

fn main() -> ExitCode {
    caliqec_bench::quiet_by_default();
    let shots = caliqec_bench::usize_from_args("shots", 200_000);
    let threads = caliqec_bench::threads_from_args();
    let distance = caliqec_bench::usize_from_args("distance", 5);
    let out = caliqec_bench::string_from_args("out", "results/drift_trajectory.json");
    let engine = LerEngine::new(threads);
    let opts = SampleOptions {
        min_shots: shots,
        ..Default::default()
    };

    let layout = rotated_patch(distance, distance);
    // Calibration-time extraction: the static arm decodes with this graph
    // forever; the aware arm reweights it per time point.
    let base_mem = memory_circuit(&layout, &NoiseModel::uniform(P0), distance, MemoryBasis::Z);
    let dem = extract_dem(&base_mem.circuit);
    let base_graph = MatchingGraph::from_dem(&dem);
    let factory = |g: &MatchingGraph| UnionFindDecoder::new(g.clone());
    let static_schedule = EpochSchedule::new(1.0); // empty = frozen weights

    let mut points = String::new();
    let mut violations = 0usize;
    for (i, &hours) in HOURS.iter().enumerate() {
        let noise = drifted_noise(&layout, hours);
        let mem = memory_circuit(&layout, &noise, distance, MemoryBasis::Z);
        let compiled = CompiledCircuit::new(&mem.circuit);
        let seed = SEED.wrapping_add(i as u64);

        let static_run = engine.estimate_epochs(
            &compiled,
            &base_graph,
            &factory,
            &static_schedule,
            opts,
            seed,
        );

        let mut aware_schedule = EpochSchedule::new(1.0);
        aware_schedule.push(0.0, drift_rate_table(&base_mem, &dem, &noise));
        let aware_run = engine.estimate_epochs(
            &compiled,
            &base_graph,
            &factory,
            &aware_schedule,
            opts,
            seed,
        );

        assert_eq!(
            static_run.estimate.shots, aware_run.estimate.shots,
            "paired arms must decode identical shot counts"
        );
        if aware_run.estimate.failures > static_run.estimate.failures {
            violations += 1;
        }
        eprintln!(
            "drift_trajectory: t={hours:>4.1}h  static {}/{} ({:.3e})  aware {}/{} ({:.3e})  reweight {:.4}s",
            static_run.estimate.failures,
            static_run.estimate.shots,
            static_run.estimate.per_shot(),
            aware_run.estimate.failures,
            aware_run.estimate.shots,
            aware_run.estimate.per_shot(),
            aware_run.reweight_seconds,
        );
        if i > 0 {
            points.push_str(",\n");
        }
        write!(
            points,
            concat!(
                "    {{\"hours\": {}, \"shots\": {}, ",
                "\"static_failures\": {}, \"static_ler\": {:e}, ",
                "\"aware_failures\": {}, \"aware_ler\": {:e}, ",
                "\"reweight_seconds\": {:.6}}}"
            ),
            hours,
            static_run.estimate.shots,
            static_run.estimate.failures,
            static_run.estimate.per_shot(),
            aware_run.estimate.failures,
            aware_run.estimate.per_shot(),
            aware_run.reweight_seconds,
        )
        .expect("write to string");
    }

    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"drift_trajectory\",\n",
            "  \"distance\": {}, \"rounds\": {}, \"p0\": {:e},\n",
            "  \"t_fast_hours\": {}, \"t_slow_hours\": {},\n",
            "  \"shots_per_point\": {}, \"seed\": {},\n",
            "  \"points\": [\n{}\n  ]\n}}\n"
        ),
        distance, distance, P0, T_FAST_HOURS, T_SLOW_HOURS, shots, SEED, points,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("drift_trajectory: error: writing {out}: {e}");
        return ExitCode::from(4);
    }
    eprintln!("drift_trajectory: wrote {out}");

    if violations > 0 {
        eprintln!(
            "drift_trajectory: FAIL — drift-aware decoding lost at {violations} time point(s)"
        );
        return ExitCode::from(1);
    }
    eprintln!("drift_trajectory: drift-aware LER <= static at every time point");
    ExitCode::SUCCESS
}
