//! Chaos smoke for the hardened LER engine: runs a tiny fixed-seed
//! workload twice — once clean, once with decoder faults injected at
//! chosen chunks — and checks that the engine survives every injection on
//! its degradation ladder with a bit-identical logical-error estimate.
//! The degradation report is written as JSON for CI to assert on.
//!
//! Flags: `--shots N` (default 20 000), `--threads N` (default auto),
//! `--out PATH` (default `CHAOS_report.json`),
//! `--faults SPEC` (default `panic@0,corrupt@1,stall@2,badweights@3`;
//! the `kind@chunk,...` grammar of `caliqec_match::FaultPlan::parse`).
//!
//! Exit codes: 0 success, 1 recovery-contract violation (estimate drifted
//! or the fault accounting is inconsistent), 2 bad `--faults` spec,
//! 4 cannot write the report.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, EngineRun, FaultPlan, LerEngine, SampleOptions, Tiered, UnionFindDecoder,
};
use caliqec_stab::CompiledCircuit;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Silences the default panic hook for the engine's worker threads so the
/// injected panics (caught and retried by the engine) don't spray
/// backtrace noise over the report. Panics on any other thread still
/// print normally.
fn quiet_worker_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("caliqec-ler-"));
        if !worker {
            default_hook(info);
        }
    }));
}

fn main() -> ExitCode {
    let shots = caliqec_bench::usize_from_args("shots", 20_000);
    let threads = caliqec_bench::threads_from_args();
    let out = caliqec_bench::string_from_args("out", "CHAOS_report.json");
    let spec = caliqec_bench::string_from_args("faults", "panic@0,corrupt@1,stall@2,badweights@3");
    let plan = match FaultPlan::parse(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaos_smoke: error: --faults {spec:?}: {e}");
            return ExitCode::from(2);
        }
    };
    quiet_worker_panics();

    let (d, p, seed) = (5usize, 3e-3, 0xC4A05E_u64);
    let mem = memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(p),
        d,
        MemoryBasis::Z,
    );
    let compiled = CompiledCircuit::new(&mem.circuit);
    let graph = graph_for_circuit(&mem.circuit);
    let factory = Tiered::new(&graph, {
        let graph = graph.clone();
        move || UnionFindDecoder::new(graph.clone())
    });
    let options = SampleOptions {
        min_shots: shots,
        ..Default::default()
    };

    eprintln!("chaos_smoke: d={d}, {shots} shots, faults {spec:?}...");
    let clean = LerEngine::new(threads).estimate(&compiled, &factory, options, seed);
    let chaos = match LerEngine::new(threads)
        .with_faults(plan)
        .try_estimate(&compiled, &factory, options, seed)
    {
        Ok(run) => run,
        Err(e) => {
            eprintln!("chaos_smoke: error: engine did not recover: {e}");
            return ExitCode::from(1);
        }
    };

    let mut violations: Vec<String> = Vec::new();
    if clean.faulted_chunks != 0 || clean.degraded_shots != 0 {
        violations.push(format!(
            "clean run reports faults ({} chunks, {} degraded shots)",
            clean.faulted_chunks, clean.degraded_shots
        ));
    }
    if (chaos.estimate.shots, chaos.estimate.failures)
        != (clean.estimate.shots, clean.estimate.failures)
    {
        violations.push(format!(
            "estimate drifted under injection: clean {}/{}, chaos {}/{}",
            clean.estimate.failures,
            clean.estimate.shots,
            chaos.estimate.failures,
            chaos.estimate.shots
        ));
    }
    if chaos.faulted_chunks == 0 {
        violations.push("no injected fault fired".to_string());
    }
    if chaos.faulted_chunks != chaos.retried_chunks {
        violations.push(format!(
            "fault accounting inconsistent: {} faults vs {} retries",
            chaos.faulted_chunks, chaos.retried_chunks
        ));
    }
    if !chaos.degraded() {
        violations.push("faults fired but the run does not report degradation".to_string());
    }

    let json = report_json(&spec, &clean, &chaos, violations.is_empty());
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("chaos_smoke: error: writing {out}: {e}");
        return ExitCode::from(4);
    }
    eprintln!("chaos_smoke: wrote {out}");

    if violations.is_empty() {
        eprintln!(
            "chaos_smoke: ok — {} faults ({} panic, {} stall, {} graph) recovered, \
             {} shots on degraded rungs, estimate bit-identical",
            chaos.faulted_chunks,
            chaos.panic_faults,
            chaos.stall_faults,
            chaos.graph_faults,
            chaos.degraded_shots,
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("chaos_smoke: violation: {v}");
        }
        ExitCode::from(1)
    }
}

/// Serializes the degradation report (hand-rolled, like perf_smoke).
fn report_json(spec: &str, clean: &EngineRun, chaos: &EngineRun, recovered: bool) -> String {
    let mut rungs = String::new();
    for (i, c) in chaos.rung_chunks.iter().enumerate() {
        if i > 0 {
            rungs.push_str(", ");
        }
        write!(rungs, "{c}").expect("write to string");
    }
    format!(
        concat!(
            "{{\n",
            "  \"faults\": \"{}\",\n",
            "  \"threads\": {},\n",
            "  \"shots\": {},\n",
            "  \"failures\": {},\n",
            "  \"clean_shots\": {},\n",
            "  \"clean_failures\": {},\n",
            "  \"recovered_bit_identical\": {},\n",
            "  \"faulted_chunks\": {},\n",
            "  \"retried_chunks\": {},\n",
            "  \"degraded_shots\": {},\n",
            "  \"rung_chunks\": [{}],\n",
            "  \"panic_faults\": {},\n",
            "  \"stall_faults\": {},\n",
            "  \"graph_faults\": {}\n",
            "}}\n"
        ),
        spec.replace('"', "'"),
        chaos.threads,
        chaos.estimate.shots,
        chaos.estimate.failures,
        clean.estimate.shots,
        clean.estimate.failures,
        recovered,
        chaos.faulted_chunks,
        chaos.retried_chunks,
        chaos.degraded_shots,
        rungs,
        chaos.panic_faults,
        chaos.stall_faults,
        chaos.graph_faults,
    )
}
