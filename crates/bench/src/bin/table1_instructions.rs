//! Regenerates the paper's table1 (see the experiments module docs).
fn main() {
    println!("{}", caliqec_bench::experiments::table1::run());
}
