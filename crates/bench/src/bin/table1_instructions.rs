//! Regenerates the paper's table1 (see the experiments module docs).
fn main() {
    caliqec_bench::quiet_by_default();
    println!("{}", caliqec_bench::experiments::table1::run());
}
