//! Regenerates the fig06 experiment (see the experiments module docs).
//! `--threads N` sets the probe's sampling worker count.
fn main() {
    caliqec_bench::quiet_by_default();
    let mut params = caliqec_bench::experiments::fig06::Fig06Params::default();
    params.probe.threads = caliqec_bench::threads_from_args();
    println!("{}", caliqec_bench::experiments::fig06::run(&params));
}
