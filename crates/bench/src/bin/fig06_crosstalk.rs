//! Regenerates the fig06 experiment (see the experiments module docs).
fn main() {
    println!("{}", caliqec_bench::experiments::fig06::run(&Default::default()));
}
