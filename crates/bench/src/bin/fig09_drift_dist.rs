//! Regenerates the paper's Figure 09 (see the experiments module docs).
fn main() {
    caliqec_bench::quiet_by_default();
    println!(
        "{}",
        caliqec_bench::experiments::fig09::run(&Default::default())
    );
}
