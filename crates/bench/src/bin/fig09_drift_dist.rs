//! Regenerates the paper's Figure 09 (see the experiments module docs).
fn main() {
    println!(
        "{}",
        caliqec_bench::experiments::fig09::run(&Default::default())
    );
}
