//! Plain-text reporting helpers for the experiment binaries.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = *w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a float in compact scientific or fixed form.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats a probability as a percentage.
pub fn fmt_pct(x: f64) -> String {
    if x > 0.995 {
        "~100%".to_string()
    } else if x < 1e-4 {
        format!("{:.3}%", x * 100.0)
    } else {
        format!("{:.2}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("a    bb"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn numbers_format() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1234567.0), "1.23e6");
        assert_eq!(fmt_num(12.3456), "12.346");
        assert_eq!(fmt_pct(0.9999), "~100%");
        assert_eq!(fmt_pct(0.0313), "3.13%");
    }
}
