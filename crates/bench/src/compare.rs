//! Baseline loading and comparison for `perf_smoke --compare`.
//!
//! The perf-smoke JSON is written by a hand-rolled formatter, so this
//! module reads it back with equally small hand-rolled scanners — but with
//! typed failures: a missing baseline, unreadable bytes, or a file that is
//! not a perf-smoke report each produce a distinct [`CompareError`] instead
//! of a panic, and the binary maps them to clean nonzero exits.

use std::fmt;

/// Why a `--compare OLD.json` baseline could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompareError {
    /// The file could not be read at all (missing, permissions, ...).
    Io(String),
    /// The file was read but does not look like JSON we can scan.
    Malformed(String),
    /// The file is JSON-ish but lacks the perf-smoke schema (no
    /// per-config objects with the expected numeric fields).
    SchemaMismatch(String),
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::Io(m) => write!(f, "cannot read baseline: {m}"),
            CompareError::Malformed(m) => write!(f, "baseline is not valid JSON: {m}"),
            CompareError::SchemaMismatch(m) => {
                write!(f, "baseline is not a perf_smoke report: {m}")
            }
        }
    }
}

impl std::error::Error for CompareError {}

/// Pulls the number following `"key":` out of a JSON fragment. Good enough
/// for the flat numeric fields perf_smoke writes; not a JSON parser.
pub fn field_num(fragment: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = fragment.find(&pat)? + pat.len();
    let rest = fragment[start..].trim_start();
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Splits a perf_smoke JSON file into its per-config object fragments.
pub fn config_fragments(json: &str) -> Vec<&str> {
    json.split('{')
        .filter(|frag| frag.contains("\"d\":"))
        .collect()
}

/// Reads and vets a `--compare` baseline file: the bytes must be UTF-8,
/// look like a JSON object, and contain at least one per-config fragment
/// carrying the numeric fields the comparison table needs.
pub fn load_baseline(path: &str) -> Result<String, CompareError> {
    let bytes = std::fs::read(path).map_err(|e| CompareError::Io(format!("{path}: {e}")))?;
    let text = String::from_utf8(bytes)
        .map_err(|_| CompareError::Malformed(format!("{path}: not UTF-8")))?;
    validate_report(&text).map_err(|e| match e {
        CompareError::Io(m) => CompareError::Io(format!("{path}: {m}")),
        CompareError::Malformed(m) => CompareError::Malformed(format!("{path}: {m}")),
        CompareError::SchemaMismatch(m) => CompareError::SchemaMismatch(format!("{path}: {m}")),
    })?;
    Ok(text)
}

/// Schema check shared by [`load_baseline`] and its tests.
fn validate_report(text: &str) -> Result<(), CompareError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(CompareError::Malformed("file is empty".to_string()));
    }
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err(CompareError::Malformed(
            "expected a top-level JSON object".to_string(),
        ));
    }
    let fragments = config_fragments(trimmed);
    if fragments.is_empty() {
        return Err(CompareError::SchemaMismatch(
            "no per-config objects with a \"d\" field".to_string(),
        ));
    }
    for key in ["decode_seconds", "shots_per_sec"] {
        if !fragments.iter().any(|f| field_num(f, key).is_some()) {
            return Err(CompareError::SchemaMismatch(format!(
                "no config carries a numeric {key:?} field"
            )));
        }
    }
    Ok(())
}

/// Finds the baseline fragment matching a new config row. Rows are keyed
/// by `(d, threads)` — perf_smoke writes one row per distance per thread
/// count — but a side that carries no `threads` field (a pre-scaling-row
/// baseline) matches on `d` alone, so old baselines keep comparing
/// cleanly.
fn matching_fragment<'a>(old_json: &'a str, new_frag: &str) -> Option<&'a str> {
    let d = field_num(new_frag, "d")?;
    let threads = field_num(new_frag, "threads");
    config_fragments(old_json).into_iter().find(|f| {
        if field_num(f, "d") != Some(d) {
            return false;
        }
        match (threads, field_num(f, "threads")) {
            (Some(new_t), Some(old_t)) => new_t == old_t,
            _ => true,
        }
    })
}

/// Renders the per-config speedup table of this run's JSON against a vetted
/// baseline (old/new decode seconds and shots-per-second, with ratios).
/// Rows match on `(d, threads)` via [`matching_fragment`].
pub fn compare_table(new_json: &str, old_json: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:>4} {:>14} {:>14} {:>9} {:>14} {:>14} {:>9}\n",
        "d",
        "thr",
        "old decode s",
        "new decode s",
        "speedup",
        "old shots/s",
        "new shots/s",
        "speedup"
    ));
    for new_frag in config_fragments(new_json) {
        let (Some(d), Some(nd), Some(nt)) = (
            field_num(new_frag, "d"),
            field_num(new_frag, "decode_seconds"),
            field_num(new_frag, "shots_per_sec"),
        ) else {
            continue;
        };
        let old_frag = matching_fragment(old_json, new_frag);
        let (od, ot) = match old_frag {
            Some(f) => (
                field_num(f, "decode_seconds"),
                field_num(f, "shots_per_sec"),
            ),
            None => (None, None),
        };
        let ratio = |a: Option<f64>, b: f64, inverted: bool| match a {
            Some(a) if a > 0.0 && b > 0.0 => {
                format!("{:.2}x", if inverted { b / a } else { a / b })
            }
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:>4} {:>4} {:>14} {:>14} {:>9} {:>14} {:>14} {:>9}\n",
            d as usize,
            field_num(new_frag, "threads")
                .map(|t| format!("{}", t as usize))
                .unwrap_or("-".into()),
            od.map(|v| format!("{v:.3}")).unwrap_or("-".into()),
            format!("{nd:.3}"),
            ratio(od, nd, false),
            ot.map(|v| format!("{v:.0}")).unwrap_or("-".into()),
            format!("{nt:.0}"),
            ratio(ot, nt, true),
        ));
    }
    out
}

/// Scans matching configs for timing regressions: any of `decode_seconds`,
/// `tier1_p99_us`, or `tier2_p99_us` growing past `old × warn_ratio` yields
/// one warning line. Fields absent from either side (e.g. a pre-percentile
/// baseline) are skipped, so old baselines keep comparing cleanly.
pub fn regression_warnings(new_json: &str, old_json: &str, warn_ratio: f64) -> Vec<String> {
    let mut warnings = Vec::new();
    for new_frag in config_fragments(new_json) {
        let Some(d) = field_num(new_frag, "d") else {
            continue;
        };
        let Some(old_frag) = matching_fragment(old_json, new_frag) else {
            continue;
        };
        for key in ["decode_seconds", "tier1_p99_us", "tier2_p99_us"] {
            let (Some(new_v), Some(old_v)) = (field_num(new_frag, key), field_num(old_frag, key))
            else {
                continue;
            };
            if old_v > 0.0 && new_v > old_v * warn_ratio {
                warnings.push(format!(
                    "d={}: {key} regressed {:.0}% ({old_v:.3} -> {new_v:.3})",
                    d as usize,
                    (new_v / old_v - 1.0) * 100.0,
                ));
            }
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
  "commit": "abc",
  "label": "",
  "configs": [
    {"d": 7, "decode_seconds": 0.5, "shots_per_sec": 1000.0},
    {"d": 11, "decode_seconds": 2.0, "shots_per_sec": 250.0}
  ]
}"#;

    #[test]
    fn missing_baseline_is_io_error() {
        let err = load_baseline("/nonexistent/BENCH_decode.json").unwrap_err();
        assert!(matches!(err, CompareError::Io(_)), "{err}");
        assert!(err.to_string().contains("cannot read baseline"));
    }

    #[test]
    fn corrupt_baseline_is_malformed() {
        let dir = std::env::temp_dir();
        let path = dir.join("caliqec_compare_corrupt.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_baseline(path.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, CompareError::Malformed(_)), "{err}");

        std::fs::write(&path, "").unwrap();
        let err = load_baseline(path.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, CompareError::Malformed(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_schema_is_schema_mismatch() {
        let dir = std::env::temp_dir();
        let path = dir.join("caliqec_compare_schema.json");
        std::fs::write(&path, r#"{"something": "else"}"#).unwrap();
        let err = load_baseline(path.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, CompareError::SchemaMismatch(_)), "{err}");

        // Has configs but none carry the timing fields.
        std::fs::write(&path, r#"{"configs": [{"d": 7}]}"#).unwrap();
        let err = load_baseline(path.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, CompareError::SchemaMismatch(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn good_baseline_round_trips_and_compares() {
        let dir = std::env::temp_dir();
        let path = dir.join("caliqec_compare_good.json");
        std::fs::write(&path, GOOD).unwrap();
        let old = load_baseline(path.to_str().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);

        let new_json = GOOD.replace("0.5", "0.25").replace("1000.0", "2000.0");
        let table = compare_table(&new_json, &old);
        assert!(table.contains("2.00x"), "speedup column missing:\n{table}");
        let lines: Vec<_> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per config:\n{table}");
    }

    #[test]
    fn regression_warnings_flag_slowdowns_and_skip_missing_fields() {
        let old = r#"{"configs": [
            {"d": 7, "decode_seconds": 1.0, "tier2_p99_us": 10.0},
            {"d": 11, "decode_seconds": 1.0}
        ]}"#;
        // d=7 decode regressed 50%, p99 improved; d=11 has no percentile
        // on either side and its decode held steady.
        let new = r#"{"configs": [
            {"d": 7, "decode_seconds": 1.5, "tier2_p99_us": 8.0},
            {"d": 11, "decode_seconds": 1.05, "tier2_p99_us": 3.0}
        ]}"#;
        let warnings = regression_warnings(new, old, 1.10);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("d=7"), "{}", warnings[0]);
        assert!(warnings[0].contains("decode_seconds"), "{}", warnings[0]);
        assert!(regression_warnings(new, old, 2.0).is_empty());
    }

    #[test]
    fn field_scanner_reads_flat_numbers() {
        assert_eq!(field_num(r#""d": 7,"#, "d"), Some(7.0));
        assert_eq!(field_num(r#""p": 1e-3}"#, "p"), Some(1e-3));
        assert_eq!(field_num(r#""p": "oops"}"#, "p"), None);
        assert_eq!(config_fragments(GOOD).len(), 2);
    }
}
