//! Figure 11: reduction in calibration count through adaptive calibration
//! assignment.
//!
//! Compares three grouping strategies over devices of growing size:
//! *uniform* (calibrate everything whenever the most fragile gate is due),
//! *QECali's adaptive grouping* (Algorithm 1), and the *ideal* lower bound
//! (each gate exactly at its drift deadline, ignoring crosstalk). The paper
//! reports 3.63×–11.1× fewer calibration operations than uniform.

use crate::report::TextTable;
use caliqec_device::{DeviceConfig, DeviceModel, DriftDistribution};
use caliqec_sched::{assign_groups, ideal_frequency, uniform_frequency, GateDrift};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Parameters of the grouping-reduction study.
#[derive(Clone, Debug)]
pub struct Fig11Params {
    /// Device sizes (grid side lengths) to sweep.
    pub device_sides: Vec<usize>,
    /// Targeted physical error rate determining drift deadlines.
    pub p_tar: f64,
    /// Drift model.
    pub drift: DriftDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig11Params {
    fn default() -> Self {
        Fig11Params {
            device_sides: vec![4, 6, 8, 12, 16, 20, 24],
            p_tar: 5e-3,
            drift: DriftDistribution::current(),
            seed: 11,
        }
    }
}

impl Fig11Params {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        Fig11Params {
            device_sides: vec![4, 6],
            ..Fig11Params::default()
        }
    }
}

/// One device-size sample.
#[derive(Clone, Copy, Debug)]
pub struct Fig11Point {
    /// Gates on the device.
    pub num_gates: usize,
    /// Uniform-strategy calibrations per hour.
    pub uniform: f64,
    /// QECali adaptive-grouping calibrations per hour.
    pub adaptive: f64,
    /// Ideal lower bound.
    pub ideal: f64,
}

impl Fig11Point {
    /// Reduction factor of adaptive grouping over uniform calibration.
    pub fn reduction(&self) -> f64 {
        self.uniform / self.adaptive
    }
}

/// Result of the Figure 11 study.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// One point per swept device size.
    pub points: Vec<Fig11Point>,
}

/// Runs the Figure 11 study.
pub fn run(params: &Fig11Params) -> Fig11Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut points = Vec::new();
    for &side in &params.device_sides {
        let device = DeviceModel::synthetic(
            &DeviceConfig {
                rows: side,
                cols: side,
                drift: params.drift,
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        let gates: Vec<GateDrift> = device
            .gates
            .iter()
            .enumerate()
            .map(|(gate, info)| GateDrift {
                gate,
                drift_hours: info.drift.time_to_reach(params.p_tar).max(1e-3),
            })
            .collect();
        let groups = assign_groups(&gates);
        points.push(Fig11Point {
            num_gates: gates.len(),
            uniform: uniform_frequency(&gates),
            adaptive: groups.frequency(),
            ideal: ideal_frequency(&gates),
        });
    }
    Fig11Result { points }
}

impl fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 11: calibration operations per hour by grouping strategy"
        )?;
        let mut t = TextTable::new([
            "gates",
            "uniform (cal/h)",
            "adaptive (cal/h)",
            "ideal (cal/h)",
            "reduction vs uniform",
        ]);
        for p in &self.points {
            t.row([
                p.num_gates.to_string(),
                format!("{:.2}", p.uniform),
                format!("{:.2}", p.adaptive),
                format!("{:.2}", p.ideal),
                format!("{:.2}x", p.reduction()),
            ]);
        }
        write!(f, "{}", t.render())?;
        let min = self
            .points
            .iter()
            .map(|p| p.reduction())
            .fold(f64::MAX, f64::min);
        let max = self
            .points
            .iter()
            .map(|p| p.reduction())
            .fold(0.0, f64::max);
        writeln!(
            f,
            "reduction range {min:.2}x - {max:.2}x (paper: 3.63x - 11.1x)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_sits_between_ideal_and_uniform() {
        let r = run(&Fig11Params::quick());
        for p in &r.points {
            assert!(p.adaptive <= p.uniform + 1e-12);
            assert!(p.adaptive >= p.ideal - 1e-12);
        }
    }

    #[test]
    fn reduction_grows_with_device_size() {
        let r = run(&Fig11Params::default());
        let first = r.points.first().unwrap().reduction();
        let last = r.points.last().unwrap().reduction();
        assert!(
            last > first,
            "reduction should grow with size: {first:.2} -> {last:.2}"
        );
        assert!(last > 3.0, "large devices should exceed 3x ({last:.2})");
    }
}
