//! Figure 1: error drift on a (synthetic) device.
//!
//! Reproduces both panels: (a) error-rate trajectories with and without
//! periodic calibration; (b) the fraction of gates whose error exceeds the
//! surface-code threshold as a function of time — the paper observes > 90 %
//! of single-qubit gates above threshold after 24 h without calibration.

use crate::report::{fmt_num, fmt_pct, TextTable};
use caliqec_device::{DeviceConfig, DeviceModel, DriftDistribution, GateKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Parameters of the drift study.
#[derive(Clone, Copy, Debug)]
pub struct Fig01Params {
    /// Device grid rows.
    pub rows: usize,
    /// Device grid columns.
    pub cols: usize,
    /// Horizon in hours.
    pub horizon_hours: f64,
    /// Trace samples.
    pub steps: usize,
    /// Surface-code threshold.
    pub threshold: f64,
    /// Calibration period of the maintained device (panel a).
    pub calibration_period_hours: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig01Params {
    fn default() -> Self {
        // 127-qubit-class device (IBM Eagle is 12x11-ish).
        Fig01Params {
            rows: 11,
            cols: 12,
            horizon_hours: 24.0,
            steps: 24,
            threshold: 0.01,
            calibration_period_hours: 6.0,
            seed: 1,
        }
    }
}

impl Fig01Params {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        Fig01Params {
            rows: 4,
            cols: 4,
            steps: 8,
            ..Fig01Params::default()
        }
    }
}

/// One time sample of the drift study.
#[derive(Clone, Copy, Debug)]
pub struct Fig01Point {
    /// Hours since the full calibration.
    pub hours: f64,
    /// Mean gate error without calibration.
    pub mean_p_uncalibrated: f64,
    /// Mean gate error with periodic calibration.
    pub mean_p_calibrated: f64,
    /// Fraction of 1-qubit gates above threshold (uncalibrated).
    pub frac_1q_above: f64,
    /// Fraction of all gates above threshold (uncalibrated).
    pub frac_all_above: f64,
}

/// Result of the Figure 1 experiment.
#[derive(Clone, Debug)]
pub struct Fig01Result {
    /// Time series.
    pub points: Vec<Fig01Point>,
    /// Fraction of 1q gates above threshold at the horizon.
    pub final_frac_1q_above: f64,
}

/// Runs the Figure 1 drift study.
pub fn run(params: &Fig01Params) -> Fig01Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows: params.rows,
            cols: params.cols,
            drift: DriftDistribution::current(),
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    let one_q: Vec<usize> = device
        .gates
        .iter()
        .enumerate()
        .filter(|(_, g)| matches!(g.kind, GateKind::OneQubit(_)))
        .map(|(i, _)| i)
        .collect();
    let mut points = Vec::new();
    for k in 0..=params.steps {
        let t = params.horizon_hours * k as f64 / params.steps as f64;
        let t_cal = t % params.calibration_period_hours;
        let ps: Vec<f64> = device.gates.iter().map(|g| g.drift.p_at(t)).collect();
        let ps_cal: Vec<f64> = device.gates.iter().map(|g| g.drift.p_at(t_cal)).collect();
        let above_1q =
            one_q.iter().filter(|&&i| ps[i] > params.threshold).count() as f64 / one_q.len() as f64;
        let above_all =
            ps.iter().filter(|&&p| p > params.threshold).count() as f64 / ps.len() as f64;
        points.push(Fig01Point {
            hours: t,
            mean_p_uncalibrated: ps.iter().sum::<f64>() / ps.len() as f64,
            mean_p_calibrated: ps_cal.iter().sum::<f64>() / ps_cal.len() as f64,
            frac_1q_above: above_1q,
            frac_all_above: above_all,
        });
    }
    let final_frac_1q_above = points.last().map(|p| p.frac_1q_above).unwrap_or(0.0);
    Fig01Result {
        points,
        final_frac_1q_above,
    }
}

impl fmt::Display for Fig01Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new([
            "hours",
            "mean p (no cal)",
            "mean p (calibrated)",
            "1q gates > threshold",
            "all gates > threshold",
        ]);
        for p in &self.points {
            t.row([
                format!("{:.1}", p.hours),
                fmt_num(p.mean_p_uncalibrated),
                fmt_num(p.mean_p_calibrated),
                fmt_pct(p.frac_1q_above),
                fmt_pct(p.frac_all_above),
            ]);
        }
        writeln!(f, "Figure 1: error drift (threshold = 1%)")?;
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "After 24h without calibration, {} of 1q gates exceed the threshold (paper: >90%).",
            fmt_pct(self.final_frac_1q_above)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_crosses_threshold_for_most_gates() {
        let r = run(&Fig01Params::default());
        // The paper reports >90%; the log-normal shape parameter we infer
        // from its Fig. 9 puts the sampled fraction at ~86-91%.
        assert!(
            r.final_frac_1q_above > 0.8,
            "only {} above threshold after 24h",
            r.final_frac_1q_above
        );
    }

    #[test]
    fn calibration_keeps_mean_error_low() {
        let r = run(&Fig01Params::quick());
        let last = r.points.last().unwrap();
        assert!(last.mean_p_calibrated < last.mean_p_uncalibrated);
    }

    #[test]
    fn display_renders() {
        let r = run(&Fig01Params::quick());
        let s = r.to_string();
        assert!(s.contains("Figure 1"));
    }
}
