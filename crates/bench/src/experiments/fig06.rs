//! Figure 6: experimental calibration-crosstalk characterization.
//!
//! Runs the paper's state-disturbance protocol (random state preparation →
//! calibration kick → un-preparation → measurement) on a synthetic device
//! and compares the measured `nbr(g)` neighbourhoods against the geometric
//! ground truth the device was generated with.

use crate::report::TextTable;
use caliqec_device::{measure_crosstalk, DeviceConfig, DeviceModel, GateKind, ProbeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Parameters of the crosstalk-characterization study.
#[derive(Clone, Copy, Debug)]
pub struct Fig06Params {
    /// Device grid rows.
    pub rows: usize,
    /// Device grid columns.
    pub cols: usize,
    /// Probe options (shots, detection threshold, disturbance physics).
    pub probe: ProbeOptions,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig06Params {
    fn default() -> Self {
        Fig06Params {
            rows: 6,
            cols: 6,
            probe: ProbeOptions::default(),
            seed: 6,
        }
    }
}

impl Fig06Params {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        Fig06Params {
            rows: 3,
            cols: 3,
            ..Fig06Params::default()
        }
    }
}

/// Result of the crosstalk-characterization study.
#[derive(Clone, Debug)]
pub struct Fig06Result {
    /// Gates probed.
    pub probed: usize,
    /// Probes whose measured neighbourhood equals the ground truth exactly.
    pub exact_matches: usize,
    /// Ground-truth qubits missed across all probes (false negatives).
    pub missed: usize,
    /// Spurious qubits flagged across all probes (false positives).
    pub spurious: usize,
    /// Mean measured neighbourhood size.
    pub mean_nbr_size: f64,
}

/// Runs the Figure 6 study over every single-qubit gate of the device.
pub fn run(params: &Fig06Params) -> Fig06Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows: params.rows,
            cols: params.cols,
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    let one_q: Vec<usize> = device
        .gates
        .iter()
        .enumerate()
        .filter(|(_, g)| matches!(g.kind, GateKind::OneQubit(_)))
        .map(|(i, _)| i)
        .collect();
    let mut exact = 0usize;
    let mut missed = 0usize;
    let mut spurious = 0usize;
    let mut total_size = 0usize;
    for &g in &one_q {
        let probe = measure_crosstalk(&device, g, &params.probe, &mut rng);
        let truth = &device.gates[g].nbr;
        total_size += probe.nbr.len();
        let mut m: Vec<_> = probe.nbr.clone();
        m.sort_unstable();
        let mut t = truth.clone();
        t.sort_unstable();
        if m == t {
            exact += 1;
        }
        missed += t.iter().filter(|q| !m.contains(q)).count();
        spurious += m.iter().filter(|q| !t.contains(q)).count();
    }
    Fig06Result {
        probed: one_q.len(),
        exact_matches: exact,
        missed,
        spurious,
        mean_nbr_size: total_size as f64 / one_q.len() as f64,
    }
}

impl fmt::Display for Fig06Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: crosstalk characterization via state disturbance"
        )?;
        let mut t = TextTable::new(["metric", "value"]);
        t.row(["gates probed".to_string(), self.probed.to_string()]);
        t.row([
            "exact neighbourhood matches".to_string(),
            format!(
                "{} ({:.0}%)",
                self.exact_matches,
                100.0 * self.exact_matches as f64 / self.probed as f64
            ),
        ]);
        t.row(["missed neighbours".to_string(), self.missed.to_string()]);
        t.row(["spurious neighbours".to_string(), self.spurious.to_string()]);
        t.row([
            "mean measured |nbr(g)|".to_string(),
            format!("{:.2}", self.mean_nbr_size),
        ]);
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_recovers_most_neighbourhoods() {
        let r = run(&Fig06Params::default());
        assert!(
            r.exact_matches * 10 >= r.probed * 7,
            "{}/{} exact",
            r.exact_matches,
            r.probed
        );
        assert!(r.mean_nbr_size > 2.0);
    }

    #[test]
    fn quick_variant_runs() {
        let r = run(&Fig06Params::quick());
        assert_eq!(r.probed, 9);
    }
}
