//! Figure 7: impact of the base interval `T_Cali` on calibration frequency.
//!
//! Reproduces the paper's worked example — the naive minimum-drift-time
//! interval groups five gates at 0.80 calibrations per hour, while
//! Algorithm 1's choice reaches 0.66 — and sweeps `T_Cali` over a candidate
//! range to show the frequency landscape.

use crate::report::TextTable;
use caliqec_sched::{assign_groups, frequency_for, GateDrift};
use std::fmt;

/// Parameters of the grouping study.
#[derive(Clone, Debug)]
pub struct Fig07Params {
    /// Gate drift times (hours to reach `p_tar`).
    pub drift_hours: Vec<f64>,
    /// Candidate intervals to tabulate.
    pub sweep: Vec<f64>,
}

impl Default for Fig07Params {
    fn default() -> Self {
        Fig07Params {
            // The paper's five-gate example (see caliqec-sched docs).
            drift_hours: vec![5.0, 8.0, 9.0, 12.0, 13.0],
            sweep: vec![3.0, 3.5, 4.0, 4.25, 4.5, 5.0],
        }
    }
}

/// Result of the grouping study.
#[derive(Clone, Debug)]
pub struct Fig07Result {
    /// `(T_Cali, frequency)` sweep samples.
    pub sweep: Vec<(f64, f64)>,
    /// Algorithm 1's chosen interval.
    pub chosen_t_cali: f64,
    /// Frequency at the chosen interval.
    pub chosen_frequency: f64,
    /// Frequency when `T_Cali = min drift time` (the naive choice).
    pub naive_frequency: f64,
}

/// Runs the Figure 7 study.
pub fn run(params: &Fig07Params) -> Fig07Result {
    let gates: Vec<GateDrift> = params
        .drift_hours
        .iter()
        .enumerate()
        .map(|(gate, &drift_hours)| GateDrift { gate, drift_hours })
        .collect();
    let sweep = params
        .sweep
        .iter()
        .map(|&t| (t, frequency_for(&gates, t)))
        .collect();
    let groups = assign_groups(&gates);
    let t_min = params
        .drift_hours
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    Fig07Result {
        sweep,
        chosen_t_cali: groups.t_cali_hours,
        chosen_frequency: groups.frequency(),
        naive_frequency: frequency_for(&gates, t_min),
    }
}

impl fmt::Display for Fig07Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: calibration frequency vs base interval T_Cali")?;
        let mut t = TextTable::new(["T_Cali (h)", "calibrations/hour"]);
        for &(tc, freq) in &self.sweep {
            t.row([format!("{tc:.2}"), format!("{freq:.4}")]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "naive (T_Cali = min drift): {:.2} cal/h; Algorithm 1 chooses T_Cali = {:.2} h at {:.2} cal/h",
            self.naive_frequency, self.chosen_t_cali, self.chosen_frequency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_numbers() {
        let r = run(&Fig07Params::default());
        assert!((r.naive_frequency - 0.80).abs() < 1e-9);
        assert!((r.chosen_t_cali - 4.0).abs() < 1e-9);
        assert!((r.chosen_frequency - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn chosen_is_sweep_minimum() {
        let r = run(&Fig07Params::default());
        for &(_, freq) in &r.sweep {
            assert!(r.chosen_frequency <= freq + 1e-12);
        }
    }
}
