//! Figure 9: probability distribution of drift-time constants.
//!
//! Samples the log-normal model fitted to the paper's IBM Eagle measurements
//! (mean 14.08 h; the future model doubles it to 28.016 h) and tabulates the
//! histogram and summary statistics.

use crate::report::TextTable;
use caliqec_device::DriftDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Parameters of the distribution study.
#[derive(Clone, Copy, Debug)]
pub struct Fig09Params {
    /// Number of samples.
    pub samples: usize,
    /// Histogram bin width in hours.
    pub bin_hours: f64,
    /// Number of histogram bins.
    pub bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig09Params {
    fn default() -> Self {
        Fig09Params {
            samples: 10_000,
            bin_hours: 4.0,
            bins: 16,
            seed: 9,
        }
    }
}

impl Fig09Params {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        Fig09Params {
            samples: 1000,
            ..Fig09Params::default()
        }
    }
}

/// Histogram + statistics for one drift model.
#[derive(Clone, Debug)]
pub struct DriftHistogram {
    /// Model label.
    pub label: String,
    /// Per-bin sample fractions.
    pub density: Vec<f64>,
    /// Sample mean (hours).
    pub mean: f64,
    /// Sample median (hours).
    pub median: f64,
}

/// Result of the Figure 9 study.
#[derive(Clone, Debug)]
pub struct Fig09Result {
    /// Bin width.
    pub bin_hours: f64,
    /// Current and future model histograms.
    pub models: Vec<DriftHistogram>,
}

fn histogram(
    label: &str,
    dist: &DriftDistribution,
    params: &Fig09Params,
    seed: u64,
) -> DriftHistogram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = dist.sample_many(params.samples, &mut rng);
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut density = vec![0.0; params.bins];
    for &s in &samples {
        let bin = ((s / params.bin_hours) as usize).min(params.bins - 1);
        density[bin] += 1.0 / params.samples as f64;
    }
    DriftHistogram {
        label: label.to_string(),
        density,
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        median: samples[samples.len() / 2],
    }
}

/// Runs the Figure 9 study.
pub fn run(params: &Fig09Params) -> Fig09Result {
    Fig09Result {
        bin_hours: params.bin_hours,
        models: vec![
            histogram(
                "current (mean 14.08h)",
                &DriftDistribution::current(),
                params,
                params.seed,
            ),
            histogram(
                "future (mean 28.016h)",
                &DriftDistribution::future(),
                params,
                params.seed + 1,
            ),
        ],
    }
}

impl fmt::Display for Fig09Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: distribution of drift time constants T(G)")?;
        let mut header = vec!["bin (h)".to_string()];
        header.extend(self.models.iter().map(|m| m.label.clone()));
        let mut t = TextTable::new(header);
        for b in 0..self.models[0].density.len() {
            let mut row = vec![format!(
                "{:.0}-{:.0}",
                b as f64 * self.bin_hours,
                (b + 1) as f64 * self.bin_hours
            )];
            for m in &self.models {
                let bar = "#".repeat((m.density[b] * 100.0).round() as usize);
                row.push(format!("{:5.1}% {bar}", m.density[b] * 100.0));
            }
            t.row(row);
        }
        write!(f, "{}", t.render())?;
        for m in &self.models {
            writeln!(
                f,
                "{}: sample mean {:.2} h, median {:.2} h",
                m.label, m.mean, m.median
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_match_models() {
        let r = run(&Fig09Params::default());
        assert!((r.models[0].mean - 14.08).abs() < 1.0);
        assert!((r.models[1].mean - 28.016).abs() < 2.0);
    }

    #[test]
    fn histograms_are_normalized_and_skewed() {
        let r = run(&Fig09Params::quick());
        for m in &r.models {
            let total: f64 = m.density.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(m.median < m.mean, "{}", m.label);
        }
    }
}
