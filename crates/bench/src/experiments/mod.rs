//! Parameterized reproductions of every table and figure in the paper's
//! evaluation. Each module exposes a `Params` struct (defaults at paper
//! scale, `quick()` for tests), a `run` function, and a `Display`able
//! result; the `src/bin/` wrappers print them.

pub mod fig01;
pub mod fig06;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod routing;
pub mod sharing;
pub mod table1;
pub mod table2;
