//! Ablation: lattice-surgery routing throughput, and the cost of LSC-style
//! channel blocking.
//!
//! Bottom-up support for two Table 2 inputs: the CX parallelism the
//! execution-time model assumes, and the execution-time penalty LSC pays
//! when calibration traffic occupies routing corridors.

use crate::report::TextTable;
use caliqec_ftqc::{route_random_workload, Tile, TileLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::fmt;

/// Parameters of the routing study.
#[derive(Clone, Debug)]
pub struct RoutingParams {
    /// Logical array sizes to sweep.
    pub array_sizes: Vec<usize>,
    /// CNOTs routed per configuration.
    pub cnots: usize,
    /// Fraction of corridor tiles blocked in the "under calibration"
    /// configuration.
    pub blocked_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoutingParams {
    fn default() -> Self {
        RoutingParams {
            array_sizes: vec![9, 16, 36, 64, 100],
            cnots: 600,
            blocked_fraction: 0.15,
            seed: 8,
        }
    }
}

impl RoutingParams {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        RoutingParams {
            array_sizes: vec![9, 16],
            cnots: 150,
            ..RoutingParams::default()
        }
    }
}

/// One array-size sample.
#[derive(Clone, Copy, Debug)]
pub struct RoutingPoint {
    /// Logical qubits in the array.
    pub logical_qubits: usize,
    /// CX parallelism with free corridors.
    pub free_parallelism: f64,
    /// CX parallelism with corridors partially blocked by calibration.
    pub blocked_parallelism: f64,
    /// Slowdown factor caused by the blocking.
    pub slowdown: f64,
}

/// Result of the routing study.
#[derive(Clone, Debug)]
pub struct RoutingResult {
    /// One point per array size.
    pub points: Vec<RoutingPoint>,
}

/// Runs the routing study.
pub fn run(params: &RoutingParams) -> RoutingResult {
    let mut points = Vec::new();
    for &n in &params.array_sizes {
        let layout = TileLayout::place(n);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let free = route_random_workload(&layout, params.cnots, &HashSet::new(), &mut rng);
        // Block a contiguous band of corridors (a region under LSC-style
        // calibration traffic), sized by the blocked fraction.
        let corridors: Vec<Tile> = (0..layout.rows)
            .flat_map(|r| (0..layout.cols).map(move |c| (r, c)))
            .filter(|&t| layout.is_corridor(t))
            .collect();
        let take = ((corridors.len() as f64 * params.blocked_fraction) as usize)
            .min(corridors.len().saturating_sub(1));
        let blocked: HashSet<Tile> = corridors.into_iter().take(take).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let congested = route_random_workload(&layout, params.cnots, &blocked, &mut rng);
        let slowdown = if congested.routed == 0 {
            f64::INFINITY
        } else {
            (congested.timesteps as f64 / congested.routed as f64)
                / (free.timesteps as f64 / free.routed as f64)
        };
        points.push(RoutingPoint {
            logical_qubits: n,
            free_parallelism: free.parallelism,
            blocked_parallelism: congested.parallelism,
            slowdown,
        });
    }
    RoutingResult { points }
}

impl fmt::Display for RoutingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: lattice-surgery CX routing throughput (and LSC channel blocking)"
        )?;
        let mut t = TextTable::new([
            "logical qubits",
            "CX/timestep (free)",
            "CX/timestep (blocked)",
            "slowdown",
        ]);
        for p in &self.points {
            t.row([
                p.logical_qubits.to_string(),
                format!("{:.2}", p.free_parallelism),
                format!("{:.2}", p.blocked_parallelism),
                format!("{:.2}x", p.slowdown),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "the free-corridor parallelism grounds the execution model's CX_PARALLELISM;"
        )?;
        writeln!(
            f,
            "the blocked column is the congestion LSC's widened channels exist to avoid"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_grows_with_array() {
        let r = run(&RoutingParams::default());
        assert!(
            r.points.last().unwrap().free_parallelism > r.points.first().unwrap().free_parallelism
        );
    }

    #[test]
    fn blocking_never_speeds_up() {
        let r = run(&RoutingParams::quick());
        for p in &r.points {
            assert!(
                p.slowdown >= 0.99,
                "slowdown {} at n={}",
                p.slowdown,
                p.logical_qubits
            );
        }
    }
}
