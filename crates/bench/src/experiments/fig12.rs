//! Figure 12: space-time overhead of calibration scheduling strategies
//! across code distances.
//!
//! For each code distance, the data qubits of a `d × d` window accumulate
//! calibration workloads; the sequential, bulk, and adaptive intra-group
//! schedulers are compared on the space-time metric `Δd × T(Cal)` (paper
//! Sec. 8.2.3, reporting 2.89× over sequential and 3.8× over bulk).

use crate::report::TextTable;
use caliqec_device::{DeviceConfig, DeviceModel, DriftDistribution};
use caliqec_sched::{adaptive_schedule, bulk_schedule, cluster_workloads, sequential_schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Parameters of the scheduling-overhead study.
#[derive(Clone, Debug)]
pub struct Fig12Params {
    /// Code distances to sweep (each induces a `d × d` device window).
    pub distances: Vec<usize>,
    /// Fraction of gates due in the studied interval.
    pub due_fraction: f64,
    /// Maximum tolerable Δd for the adaptive scheduler.
    pub delta_d_max: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig12Params {
    fn default() -> Self {
        Fig12Params {
            distances: vec![9, 13, 17, 21, 25, 31],
            // Sparse enough that the due gates of an interval form several
            // independent workloads (dense sets all cluster together and
            // every strategy degenerates to one batch).
            due_fraction: 0.06,
            delta_d_max: 8,
            seed: 12,
        }
    }
}

impl Fig12Params {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        Fig12Params {
            distances: vec![9, 13],
            ..Fig12Params::default()
        }
    }
}

/// One distance sample.
#[derive(Clone, Copy, Debug)]
pub struct Fig12Point {
    /// Code distance.
    pub d: usize,
    /// Workloads scheduled.
    pub workloads: usize,
    /// Sequential space-time cost (Δd·hours).
    pub sequential: f64,
    /// Bulk space-time cost.
    pub bulk: f64,
    /// Adaptive space-time cost.
    pub adaptive: f64,
    /// The Δd the adaptive scheduler chose.
    pub chosen_delta_d: usize,
}

/// Result of the Figure 12 study.
#[derive(Clone, Debug)]
pub struct Fig12Result {
    /// One point per distance.
    pub points: Vec<Fig12Point>,
}

impl Fig12Result {
    /// Geometric-mean improvement of adaptive over sequential.
    pub fn improvement_vs_sequential(&self) -> f64 {
        geo_mean(self.points.iter().map(|p| p.sequential / p.adaptive))
    }

    /// Geometric-mean improvement of adaptive over bulk.
    pub fn improvement_vs_bulk(&self) -> f64 {
        geo_mean(self.points.iter().map(|p| p.bulk / p.adaptive))
    }
}

fn geo_mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

/// Runs the Figure 12 study.
pub fn run(params: &Fig12Params) -> Fig12Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut points = Vec::new();
    for &d in &params.distances {
        let device = DeviceModel::synthetic(
            &DeviceConfig {
                rows: d,
                cols: d,
                drift: DriftDistribution::current(),
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        // A random subset of gates comes due in the studied interval.
        let due: Vec<usize> = (0..device.gates.len())
            .filter(|_| rng.random::<f64>() < params.due_fraction)
            .collect();
        let workloads = cluster_workloads(&device, &due);
        let seq = sequential_schedule(&workloads);
        let bulk = bulk_schedule(&workloads);
        let (adaptive, chosen) = adaptive_schedule(&workloads, params.delta_d_max);
        points.push(Fig12Point {
            d,
            workloads: workloads.len(),
            sequential: seq.space_time_cost(),
            bulk: bulk.space_time_cost(),
            adaptive: adaptive.space_time_cost(),
            chosen_delta_d: chosen,
        });
    }
    Fig12Result { points }
}

impl fmt::Display for Fig12Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 12: space-time overhead (Δd x hours) of intra-group scheduling"
        )?;
        let mut t = TextTable::new([
            "d",
            "workloads",
            "sequential",
            "bulk",
            "adaptive",
            "chosen Δd",
        ]);
        for p in &self.points {
            t.row([
                p.d.to_string(),
                p.workloads.to_string(),
                format!("{:.2}", p.sequential),
                format!("{:.2}", p.bulk),
                format!("{:.2}", p.adaptive),
                p.chosen_delta_d.to_string(),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "adaptive improves {:.2}x over sequential and {:.2}x over bulk (paper: 2.89x, 3.8x)",
            self.improvement_vs_sequential(),
            self.improvement_vs_bulk()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_never_loses() {
        let r = run(&Fig12Params::quick());
        for p in &r.points {
            assert!(p.adaptive <= p.sequential + 1e-9, "d={}", p.d);
            assert!(p.adaptive <= p.bulk + 1e-9, "d={}", p.d);
        }
    }

    #[test]
    fn improvements_exceed_one() {
        let r = run(&Fig12Params::default());
        assert!(r.improvement_vs_sequential() > 1.0);
        assert!(r.improvement_vs_bulk() >= 1.0);
    }
}
