//! Table 2: end-to-end comparison of No-Calibration / LSC / QECali on the
//! paper's large-scale benchmarks.
//!
//! Each row evaluates one benchmark at one code distance under one drift
//! model, reporting physical qubits, execution time, and retry risk for all
//! three policies. Row selection mirrors the paper: Hubbard-10-10,
//! Hubbard-20-20, and jellium-250 under the current model; jellium-1024,
//! Grover-100, and Hubbard-10-10 under the future model; two distances each.

use crate::report::{fmt_num, fmt_pct, TextTable};
use caliqec_device::DriftDistribution;
use caliqec_ftqc::{table2_row, BenchProgram, EvalConfig, PolicyResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Which drift model a row uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DriftEra {
    /// Log-normal, mean 14.08 h.
    Current,
    /// Log-normal, mean 28.016 h.
    Future,
}

/// One Table 2 row specification.
#[derive(Clone, Debug)]
pub struct RowSpec {
    /// The benchmark.
    pub program: BenchProgram,
    /// Code distance.
    pub d: usize,
    /// Drift era.
    pub era: DriftEra,
}

/// Parameters of the Table 2 evaluation.
#[derive(Clone, Debug)]
pub struct Table2Params {
    /// Rows to evaluate.
    pub rows: Vec<RowSpec>,
    /// Retry-risk target the policies calibrate towards.
    pub retry_target: f64,
    /// Drift-ensemble sample size.
    pub ensemble_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table2Params {
    fn default() -> Self {
        let mut rows = Vec::new();
        let current = [
            (BenchProgram::hubbard(10, 10), [25usize, 27]),
            (BenchProgram::hubbard(20, 20), [29, 31]),
            (BenchProgram::jellium(250), [39, 41]),
        ];
        for (p, ds) in current {
            for d in ds {
                rows.push(RowSpec {
                    program: p.clone(),
                    d,
                    era: DriftEra::Current,
                });
            }
        }
        let future = [
            (BenchProgram::jellium(1024), [45usize, 47]),
            (BenchProgram::grover(100), [41, 43]),
            (BenchProgram::hubbard(10, 10), [25, 27]),
        ];
        for (p, ds) in future {
            for d in ds {
                rows.push(RowSpec {
                    program: p.clone(),
                    d,
                    era: DriftEra::Future,
                });
            }
        }
        Table2Params {
            rows,
            retry_target: 0.01,
            ensemble_size: 500,
            seed: 2,
        }
    }
}

impl Table2Params {
    /// Reduced parameters for fast tests: a single row, small ensemble.
    pub fn quick() -> Self {
        Table2Params {
            rows: vec![RowSpec {
                program: BenchProgram::hubbard(10, 10),
                d: 25,
                era: DriftEra::Current,
            }],
            ensemble_size: 150,
            ..Table2Params::default()
        }
    }
}

/// One evaluated row.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// The specification.
    pub spec: RowSpec,
    /// Results for `[NoCalibration, Lsc, Qecali]`.
    pub results: [PolicyResult; 3],
}

impl Table2Row {
    /// LSC qubit overhead over the baseline.
    pub fn lsc_qubit_overhead(&self) -> f64 {
        self.results[1].physical_qubits as f64 / self.results[0].physical_qubits as f64 - 1.0
    }

    /// QECali qubit overhead over the baseline.
    pub fn qecali_qubit_overhead(&self) -> f64 {
        self.results[2].physical_qubits as f64 / self.results[0].physical_qubits as f64 - 1.0
    }

    /// Retry-risk reduction of QECali relative to LSC.
    pub fn risk_reduction_vs_lsc(&self) -> f64 {
        if self.results[1].retry_risk == 0.0 {
            return 0.0;
        }
        1.0 - self.results[2].retry_risk / self.results[1].retry_risk
    }
}

/// Result of the Table 2 evaluation.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// Evaluated rows.
    pub rows: Vec<Table2Row>,
}

/// Runs the Table 2 evaluation.
pub fn run(params: &Table2Params) -> Table2Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let rows = params
        .rows
        .iter()
        .map(|spec| {
            let config = EvalConfig {
                drift: match spec.era {
                    DriftEra::Current => DriftDistribution::current(),
                    DriftEra::Future => DriftDistribution::future(),
                },
                retry_target: params.retry_target,
                ensemble_size: params.ensemble_size,
                ..EvalConfig::default()
            };
            Table2Row {
                spec: spec.clone(),
                results: table2_row(&spec.program, spec.d, &config, &mut rng),
            }
        })
        .collect();
    Table2Result { rows }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: No-Calibration vs LSC vs QECali on large-scale programs"
        )?;
        let mut t = TextTable::new([
            "era",
            "benchmark",
            "d",
            "policy",
            "phys qubits",
            "exec (h)",
            "retry risk",
        ]);
        for row in &self.rows {
            for (i, name) in ["No Calibration", "LSC", "QECali"].iter().enumerate() {
                let r = &row.results[i];
                t.row([
                    format!("{:?}", row.spec.era),
                    row.spec.program.name.clone(),
                    row.spec.d.to_string(),
                    name.to_string(),
                    fmt_num(r.physical_qubits as f64),
                    format!("{:.2}", r.exec_hours),
                    fmt_pct(r.retry_risk),
                ]);
            }
        }
        write!(f, "{}", t.render())?;
        let avg_lsc: f64 = self
            .rows
            .iter()
            .map(|r| r.lsc_qubit_overhead())
            .sum::<f64>()
            / self.rows.len() as f64;
        let avg_q: f64 = self
            .rows
            .iter()
            .map(|r| r.qecali_qubit_overhead())
            .sum::<f64>()
            / self.rows.len() as f64;
        writeln!(
            f,
            "mean qubit overhead: LSC {:.0}% (paper: 363%), QECali {:.0}% (paper: 24%)",
            avg_lsc * 100.0,
            avg_q * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_row_has_paper_shape() {
        let r = run(&Table2Params::quick());
        let row = &r.rows[0];
        let [nocal, lsc, qecali] = &row.results;
        assert!(nocal.retry_risk > 0.99);
        assert!(lsc.retry_risk < 0.5);
        assert!(qecali.retry_risk <= lsc.retry_risk * 1.05);
        assert!(row.lsc_qubit_overhead() > 3.0);
        assert!(row.qecali_qubit_overhead() < 1.0);
        assert!(lsc.exec_hours > nocal.exec_hours);
        assert_eq!(qecali.exec_hours, nocal.exec_hours);
    }

    #[test]
    fn default_rows_cover_both_eras() {
        let p = Table2Params::default();
        assert_eq!(p.rows.len(), 12);
        assert!(p.rows.iter().any(|r| r.era == DriftEra::Future));
    }
}
