//! Table 1: the QECali instruction sets for square and heavy-hexagon
//! surface codes.
//!
//! Prints the instruction inventory and executes one worked deformation per
//! instruction on a d = 5 patch, reporting the structural effect (data
//! qubits removed, superstabilizers formed, distance change).

use crate::report::TextTable;
use caliqec_code::{
    code_distance, data_coord, DeformInstruction, DeformedPatch, Lattice, Readout, Side, StabKind,
};
use std::fmt;

/// One demonstrated instruction.
#[derive(Clone, Debug)]
pub struct InstructionDemo {
    /// Lattice the instruction belongs to.
    pub lattice: Lattice,
    /// Instruction name (paper Table 1 spelling).
    pub name: &'static str,
    /// Data qubits before → after.
    pub data: (usize, usize),
    /// Stabilizers before → after.
    pub stabilizers: (usize, usize),
    /// Superstabilizers after.
    pub superstabilizers: usize,
    /// Code distance before → after.
    pub distance: (usize, usize),
}

/// Result of the Table 1 demonstration.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// One row per instruction.
    pub demos: Vec<InstructionDemo>,
}

fn demo(
    lattice: Lattice,
    name: &'static str,
    instr: impl FnOnce(&DeformedPatch) -> DeformInstruction,
) -> InstructionDemo {
    let mut patch = DeformedPatch::new(lattice, 5, 5);
    let before = patch.layout().expect("pristine valid");
    let d_before = code_distance(&before).min();
    let chosen = instr(&patch);
    let after = patch.apply(chosen).expect("instruction applies");
    InstructionDemo {
        lattice,
        name,
        data: (before.data.len(), after.data.len()),
        stabilizers: (before.stabilizers.len(), after.stabilizers.len()),
        superstabilizers: after.num_superstabilizers(),
        distance: (d_before, code_distance(&after).min()),
    }
}

/// Finds a bridge ancilla of the given chain index on an interior X
/// stabilizer of a heavy-hex patch.
fn hex_bridge_node(patch: &DeformedPatch, index: usize) -> caliqec_code::Coord {
    let layout = patch.layout().expect("valid");
    let stab = layout
        .stabilizers
        .iter()
        .find(|s| s.weight() == 4 && s.kind == StabKind::X)
        .expect("interior X stabilizer");
    match &stab.readout {
        Readout::Chain { parts } => parts[0].chain[index],
        Readout::Direct { .. } => unreachable!("heavy-hex uses chains"),
    }
}

/// Runs the Table 1 demonstration.
pub fn run() -> Table1Result {
    let mut demos = Vec::new();
    // Square-lattice instruction set.
    demos.push(demo(Lattice::Square, "DataQ_RM", |_| {
        DeformInstruction::DataQRm {
            qubit: data_coord(2, 2),
        }
    }));
    demos.push(demo(Lattice::Square, "SyndromeQ_RM", |p| {
        let layout = p.layout().expect("valid");
        let stab = layout
            .stabilizers
            .iter()
            .find(|s| s.weight() == 4 && s.kind == StabKind::Z)
            .expect("interior Z stabilizer");
        DeformInstruction::SyndromeQRm {
            ancilla: stab.readout.measured_qubits()[0],
        }
    }));
    demos.push(demo(Lattice::Square, "PatchQ_RM", |_| {
        DeformInstruction::PatchQRm { side: Side::Right }
    }));
    demos.push(demo(Lattice::Square, "PatchQ_AD", |_| {
        DeformInstruction::PatchQAd { side: Side::Right }
    }));
    // Heavy-hexagon instruction set.
    demos.push(demo(Lattice::HeavyHex, "DataQ_RM", |_| {
        DeformInstruction::DataQRm {
            qubit: data_coord(2, 2),
        }
    }));
    demos.push(demo(Lattice::HeavyHex, "AncQ_RM_HorDeg2", |p| {
        DeformInstruction::AncQRmHorDeg2 {
            ancilla: hex_bridge_node(p, 3),
        }
    }));
    demos.push(demo(Lattice::HeavyHex, "AncQ_RM_VerDeg2", |p| {
        DeformInstruction::AncQRmVerDeg2 {
            ancilla: hex_bridge_node(p, 1),
        }
    }));
    demos.push(demo(Lattice::HeavyHex, "AncQ_RM_Deg3", |p| {
        DeformInstruction::AncQRmDeg3 {
            ancilla: hex_bridge_node(p, 0),
        }
    }));
    demos.push(demo(Lattice::HeavyHex, "PatchQ_RM", |_| {
        DeformInstruction::PatchQRm { side: Side::Bottom }
    }));
    demos.push(demo(Lattice::HeavyHex, "PatchQ_AD", |_| {
        DeformInstruction::PatchQAd { side: Side::Bottom }
    }));
    Table1Result { demos }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1: QECali instruction sets (worked on a d = 5 patch)"
        )?;
        let mut t = TextTable::new([
            "lattice",
            "instruction",
            "data qubits",
            "stabilizers",
            "superstabs",
            "distance",
        ]);
        for d in &self.demos {
            t.row([
                format!("{:?}", d.lattice),
                d.name.to_string(),
                format!("{} -> {}", d.data.0, d.data.1),
                format!("{} -> {}", d.stabilizers.0, d.stabilizers.1),
                d.superstabilizers.to_string(),
                format!("{} -> {}", d.distance.0, d.distance.1),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_instructions_demonstrate() {
        let r = run();
        assert_eq!(r.demos.len(), 10);
        let square = r
            .demos
            .iter()
            .filter(|d| d.lattice == Lattice::Square)
            .count();
        assert_eq!(square, 4);
    }

    #[test]
    fn data_q_rm_forms_superstabilizers() {
        let r = run();
        let d = r
            .demos
            .iter()
            .find(|d| d.name == "DataQ_RM" && d.lattice == Lattice::Square)
            .unwrap();
        assert_eq!(d.data.1, d.data.0 - 1);
        assert_eq!(d.superstabilizers, 2);
    }

    #[test]
    fn patch_ops_change_distance() {
        let r = run();
        let rm = r
            .demos
            .iter()
            .find(|d| d.name == "PatchQ_RM" && d.lattice == Lattice::Square)
            .unwrap();
        assert!(rm.distance.1 < rm.distance.0);
        let ad = r
            .demos
            .iter()
            .find(|d| d.name == "PatchQ_AD" && d.lattice == Lattice::Square)
            .unwrap();
        assert!(ad.data.1 > ad.data.0);
    }
}
