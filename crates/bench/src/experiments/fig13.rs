//! Figure 13: d = 3 surface-code LER under drift and isolation, on the
//! square (Rigetti-style) and heavy-hexagon (IBM-style) lattices.
//!
//! Five scenarios per lattice (paper Sec. 8.3): *original*, one *drifted*
//! single-qubit gate, one *drifted* two-qubit gate, and the two *isolated
//! drifted* cases where the deformation instruction set removes the drifted
//! element (with enlargement restoring the distance). The paper's hardware
//! result: drift raises the LER by 41.6 %/135.5 % (square, 1Q/2Q) and
//! 55.0 %/178.2 % (heavy-hex), while isolation limits the increase to
//! 13.1 %/21.0 % and 22.8 %/33.6 % — with heavy-hex the more drift-sensitive
//! topology.

use crate::report::{fmt_num, TextTable};
use caliqec_code::{
    memory_circuit, DeformInstruction, DeformedPatch, Lattice, MemoryBasis, NoiseModel, Readout,
    Side, StabKind,
};
use caliqec_match::{graph_for_circuit, LerEngine, SampleOptions, UnionFindDecoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The five Fig. 13 scenarios.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Fig13Scenario {
    /// Freshly calibrated device.
    Original,
    /// One single-qubit gate drifted for 8 hours.
    Drifted1Q,
    /// One two-qubit gate drifted for 8 hours.
    Drifted2Q,
    /// The drifted single-qubit gate's qubit isolated via deformation.
    IsolatedDrifted1Q,
    /// The drifted two-qubit gate isolated via deformation.
    IsolatedDrifted2Q,
}

impl Fig13Scenario {
    /// All scenarios in presentation order.
    pub const ALL: [Fig13Scenario; 5] = [
        Fig13Scenario::Original,
        Fig13Scenario::Drifted1Q,
        Fig13Scenario::Drifted2Q,
        Fig13Scenario::IsolatedDrifted1Q,
        Fig13Scenario::IsolatedDrifted2Q,
    ];

    /// Display label matching the paper's column names.
    pub fn label(&self) -> &'static str {
        match self {
            Fig13Scenario::Original => "original",
            Fig13Scenario::Drifted1Q => "drifted 1Q",
            Fig13Scenario::Drifted2Q => "drifted 2Q",
            Fig13Scenario::IsolatedDrifted1Q => "isolated drifted 1Q",
            Fig13Scenario::IsolatedDrifted2Q => "isolated drifted 2Q",
        }
    }
}

/// Parameters of the d = 3 device experiment.
#[derive(Clone, Copy, Debug)]
pub struct Fig13Params {
    /// Baseline per-channel error rate.
    pub p0: f64,
    /// Hours of uncompensated drift applied to the drifted gate.
    pub drift_hours: f64,
    /// Drift-time constant of the drifted single-qubit gate.
    pub t_drift_1q_hours: f64,
    /// Drift-time constant of the drifted two-qubit gate (couplers drift
    /// faster, which is why the paper's drifted-2Q columns are worse).
    pub t_drift_2q_hours: f64,
    /// Syndrome rounds per shot.
    pub rounds: usize,
    /// Monte-Carlo shots per scenario.
    pub min_shots: usize,
    /// Early-stop failure budget.
    pub max_failures: usize,
    /// Shot cap.
    pub max_shots: usize,
    /// Monte-Carlo worker threads (0 = auto, honouring `CALIQEC_THREADS`).
    /// The measured LERs are identical at any thread count.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig13Params {
    fn default() -> Self {
        Fig13Params {
            p0: 2e-3,
            drift_hours: 8.0,
            t_drift_1q_hours: 10.0,
            t_drift_2q_hours: 5.5,
            rounds: 3,
            min_shots: 400_000,
            max_failures: 600,
            max_shots: 1_600_000,
            threads: 0,
            seed: 13,
        }
    }
}

impl Fig13Params {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        Fig13Params {
            min_shots: 10_000,
            max_failures: 100,
            max_shots: 40_000,
            ..Fig13Params::default()
        }
    }

    /// The drifted single-qubit error rate after `drift_hours`.
    pub fn drifted_p_1q(&self) -> f64 {
        self.p0 * 10f64.powf(self.drift_hours / self.t_drift_1q_hours)
    }

    /// The drifted two-qubit error rate after `drift_hours`.
    pub fn drifted_p_2q(&self) -> f64 {
        self.p0 * 10f64.powf(self.drift_hours / self.t_drift_2q_hours)
    }
}

/// One scenario measurement.
#[derive(Clone, Copy, Debug)]
pub struct Fig13Cell {
    /// Scenario.
    pub scenario: Fig13Scenario,
    /// Logical error rate per shot.
    pub ler: f64,
    /// Binomial standard error.
    pub std_err: f64,
    /// Physical qubits used.
    pub physical_qubits: usize,
}

/// Per-lattice results.
#[derive(Clone, Debug)]
pub struct Fig13Lattice {
    /// The lattice.
    pub lattice: Lattice,
    /// Scenario measurements in [`Fig13Scenario::ALL`] order.
    pub cells: Vec<Fig13Cell>,
}

impl Fig13Lattice {
    /// LER of a scenario.
    pub fn ler_of(&self, s: Fig13Scenario) -> f64 {
        self.cells
            .iter()
            .find(|c| c.scenario == s)
            .map(|c| c.ler)
            .unwrap_or(0.0)
    }

    /// Relative LER increase of a scenario over the original.
    pub fn increase(&self, s: Fig13Scenario) -> f64 {
        let base = self.ler_of(Fig13Scenario::Original);
        if base == 0.0 {
            return 0.0;
        }
        self.ler_of(s) / base - 1.0
    }
}

/// Result of the Figure 13 experiment.
#[derive(Clone, Debug)]
pub struct Fig13Result {
    /// Square- and heavy-hex-lattice results.
    pub lattices: Vec<Fig13Lattice>,
}

/// Runs one scenario on one lattice.
fn run_scenario(
    lattice: Lattice,
    scenario: Fig13Scenario,
    params: &Fig13Params,
    rng: &mut StdRng,
) -> Fig13Cell {
    let mut patch = DeformedPatch::new(lattice, 3, 3);
    let pristine = patch.layout().expect("pristine valid");
    // The drifted 1Q gate sits on the central data qubit; the drifted 2Q
    // gate is the coupler between that qubit and its stabilizer readout.
    let drift_target = caliqec_code::data_coord(1, 1);
    let two_q_partner = pristine
        .stabilizers
        .iter()
        .find(|s| s.kind == StabKind::Z && s.support.contains(&drift_target))
        .map(|s| match &s.readout {
            Readout::Direct { ancilla } => *ancilla,
            Readout::Chain { parts } => {
                // The bridge node attached to the drifted qubit.
                let part = &parts[0];
                let (k, _) = part
                    .attach
                    .iter()
                    .find(|&&(_, d)| d == drift_target)
                    .copied()
                    .expect("attachment for support qubit");
                part.chain[k]
            }
        })
        .expect("central qubit has a Z stabilizer");

    let mut noise = NoiseModel::uniform(params.p0);
    match scenario {
        Fig13Scenario::Original => {}
        Fig13Scenario::Drifted1Q => {
            noise.drift_qubit(drift_target, params.drifted_p_1q());
        }
        Fig13Scenario::Drifted2Q => {
            noise.drift_pair(drift_target, two_q_partner, params.drifted_p_2q());
        }
        Fig13Scenario::IsolatedDrifted1Q | Fig13Scenario::IsolatedDrifted2Q => {
            // Isolate the drifted element with the lattice's instruction set.
            let instr = match (lattice, scenario) {
                (Lattice::HeavyHex, Fig13Scenario::IsolatedDrifted2Q) => {
                    // The drifted coupler touches a bridge attach node:
                    // AncQ_RM_Deg3 removes it (and pins the data qubit).
                    DeformInstruction::AncQRmDeg3 {
                        ancilla: two_q_partner,
                    }
                }
                _ => DeformInstruction::DataQRm {
                    qubit: drift_target,
                },
            };
            patch.apply(instr).expect("isolation applies");
            // Dynamic code enlargement restores the original distance.
            for side in [Side::Right, Side::Bottom, Side::Right, Side::Bottom] {
                let layout = patch.layout().expect("valid");
                if caliqec_code::code_distance(&layout).min() >= 3 {
                    break;
                }
                patch
                    .apply(DeformInstruction::PatchQAd { side })
                    .expect("enlargement applies");
            }
        }
    }
    let layout = patch.layout().expect("valid layout");
    let mem = memory_circuit(&layout, &noise, params.rounds, MemoryBasis::Z);
    let graph = graph_for_circuit(&mem.circuit);
    let est = LerEngine::new(params.threads)
        .estimate_circuit(
            &mem.circuit,
            &|| UnionFindDecoder::new(graph.clone()),
            SampleOptions {
                min_shots: params.min_shots,
                max_failures: params.max_failures,
                max_shots: params.max_shots,
            },
            rng.random(),
        )
        .estimate;
    Fig13Cell {
        scenario,
        ler: est.per_shot(),
        std_err: est.std_err(),
        physical_qubits: layout.num_physical_qubits(),
    }
}

/// Runs the Figure 13 experiment on both lattices.
pub fn run(params: &Fig13Params) -> Fig13Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let lattices = [Lattice::Square, Lattice::HeavyHex]
        .into_iter()
        .map(|lattice| Fig13Lattice {
            lattice,
            cells: Fig13Scenario::ALL
                .iter()
                .map(|&s| run_scenario(lattice, s, params, &mut rng))
                .collect(),
        })
        .collect();
    Fig13Result { lattices }
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13: d = 3 logical error rate under drift and isolation"
        )?;
        for l in &self.lattices {
            writeln!(f, "\n{:?} lattice:", l.lattice)?;
            let mut t = TextTable::new(["scenario", "LER", "std err", "qubits", "vs original"]);
            for c in &l.cells {
                t.row([
                    c.scenario.label().to_string(),
                    fmt_num(c.ler),
                    fmt_num(c.std_err),
                    c.physical_qubits.to_string(),
                    format!("{:+.1}%", l.increase(c.scenario) * 100.0),
                ]);
            }
            write!(f, "{}", t.render())?;
        }
        writeln!(
            f,
            "\npaper: square +41.6%/+135.5% drifted vs +13.1%/+21.0% isolated;"
        )?;
        writeln!(
            f,
            "       heavy-hex +55.0%/+178.2% drifted vs +22.8%/+33.6% isolated"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_raises_ler_and_isolation_contains_it() {
        let r = run(&Fig13Params {
            min_shots: 60_000,
            max_failures: 400,
            max_shots: 120_000,
            ..Fig13Params::default()
        });
        for l in &r.lattices {
            let orig = l.ler_of(Fig13Scenario::Original);
            let d1 = l.ler_of(Fig13Scenario::Drifted1Q);
            let d2 = l.ler_of(Fig13Scenario::Drifted2Q);
            assert!(orig > 0.0, "{:?}: original LER unmeasured", l.lattice);
            assert!(d1 > orig, "{:?}: drift 1Q must hurt", l.lattice);
            assert!(d2 > orig, "{:?}: drift 2Q must hurt", l.lattice);
            let i1 = l.ler_of(Fig13Scenario::IsolatedDrifted1Q);
            assert!(
                i1 < d1,
                "{:?}: isolation must beat drifting ({i1:e} vs {d1:e})",
                l.lattice
            );
        }
    }
}
