//! Ablation: compensation-qubit sharing (paper Sec. 8.2.1).
//!
//! The paper reports that the `d → d + Δd` enlargement costs ~14 % extra
//! physical qubits when every patch keeps its own headroom, and that sharing
//! the compensation qubits across logical patches (only the patches under
//! calibration are enlarged at any instant) reduces the *net* overhead to
//! ~6 %. This study computes both quantities across code distances using
//! the adaptive schedule's actual concurrency.

use crate::report::TextTable;
use caliqec_ftqc::{compensation_headroom, tile_qubits};
use std::fmt;

/// Parameters of the sharing ablation.
#[derive(Clone, Debug)]
pub struct SharingParams {
    /// Logical qubits in the array.
    pub logical_qubits: usize,
    /// Enlargement headroom Δd.
    pub delta_d: usize,
    /// Fraction of patches under calibration at once (from the intra-group
    /// schedule's concurrency; the paper's batches touch a few percent).
    pub concurrent_fraction: f64,
    /// Code distances to sweep.
    pub distances: Vec<usize>,
}

impl Default for SharingParams {
    fn default() -> Self {
        SharingParams {
            logical_qubits: 100,
            delta_d: 4,
            concurrent_fraction: 0.10,
            distances: vec![11, 15, 19, 25, 31],
        }
    }
}

/// One distance sample.
#[derive(Clone, Copy, Debug)]
pub struct SharingPoint {
    /// Code distance.
    pub d: usize,
    /// Per-patch headroom overhead (fraction of the baseline array).
    pub per_patch_overhead: f64,
    /// Shared-pool overhead.
    pub shared_overhead: f64,
}

/// Result of the sharing ablation.
#[derive(Clone, Debug)]
pub struct SharingResult {
    /// One point per distance.
    pub points: Vec<SharingPoint>,
}

/// Runs the sharing ablation.
pub fn run(params: &SharingParams) -> SharingResult {
    let concurrent =
        ((params.logical_qubits as f64 * params.concurrent_fraction).ceil() as usize).max(1);
    let points = params
        .distances
        .iter()
        .map(|&d| {
            let baseline = params.logical_qubits * tile_qubits(d);
            let (per_patch, shared) =
                compensation_headroom(params.logical_qubits, d, params.delta_d, concurrent);
            SharingPoint {
                d,
                per_patch_overhead: per_patch as f64 / baseline as f64,
                shared_overhead: shared as f64 / baseline as f64,
            }
        })
        .collect();
    SharingResult { points }
}

impl fmt::Display for SharingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation (Sec. 8.2.1): compensation-qubit sharing across logical patches"
        )?;
        let mut t = TextTable::new(["d", "per-patch headroom", "shared headroom", "saving"]);
        for p in &self.points {
            t.row([
                p.d.to_string(),
                format!("{:.1}%", p.per_patch_overhead * 100.0),
                format!("{:.1}%", p.shared_overhead * 100.0),
                format!("{:.1}x", p.per_patch_overhead / p.shared_overhead),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "paper: ~14% per-patch at d = 11 reduced to ~6% net with sharing"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_always_saves() {
        let r = run(&SharingParams::default());
        for p in &r.points {
            assert!(p.shared_overhead < p.per_patch_overhead);
        }
    }

    #[test]
    fn overhead_shrinks_with_distance() {
        let r = run(&SharingParams::default());
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        assert!(last.per_patch_overhead < first.per_patch_overhead);
    }

    #[test]
    fn d11_scale_matches_paper_regime() {
        let r = run(&SharingParams::default());
        let d11 = r.points.iter().find(|p| p.d == 11).unwrap();
        // Our tile model puts per-patch Δd=4 headroom at d=11 near 86%;
        // the paper's 14% corresponds to a tighter enlargement pattern —
        // the reproduced claim is the sharing *ratio*, which is set by the
        // concurrency (10x saving at 10% concurrency).
        assert!(d11.per_patch_overhead / d11.shared_overhead > 5.0);
    }
}
