//! Figure 10: logical-error-rate dynamics across calibration cycles
//! (d = 11, Monte-Carlo).
//!
//! Three scenarios are simulated through two calibration cycles on a
//! distance-`d` square patch whose data qubits drift individually:
//!
//! 1. **No calibration** — the LER grows without bound.
//! 2. **Isolation + calibration** — drifted qubits are isolated (`DataQ_RM`)
//!    during the calibration window; the LER briefly spikes from the
//!    distance loss, then recovers below the pre-calibration level.
//! 3. **Isolation + enlargement + calibration** — `PatchQ_AD` growth
//!    compensates the distance loss, keeping the LER at or below target
//!    throughout, at a modest temporary qubit overhead.
//!
//! Every point is a full stabilizer-simulation + union-find-decoding run on
//! the deformed layout of that instant.

use crate::report::{fmt_num, TextTable};
use caliqec_code::{
    code_distance, memory_circuit, rotated_patch, Coord, DeformInstruction, DeformedPatch, Lattice,
    MemoryBasis, NoiseModel, Side,
};
use caliqec_match::{graph_for_circuit, LerEngine, SampleOptions, UnionFindDecoder};
use caliqec_sched::ler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// The three Fig. 10 scenarios.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Scenario {
    /// Let errors drift.
    NoCalibration,
    /// Isolate + calibrate, no enlargement.
    IsolationOnly,
    /// The full QECali scheme: isolate + enlarge + calibrate.
    Full,
}

impl Scenario {
    /// All scenarios in presentation order.
    pub const ALL: [Scenario; 3] = [
        Scenario::NoCalibration,
        Scenario::IsolationOnly,
        Scenario::Full,
    ];
}

/// Parameters of the LER-dynamics experiment.
///
/// Drift is heterogeneous, as the paper's Fig. 2a depicts: a handful of fast
/// drifters dominate the logical error growth ("even a small number of
/// underperforming qubits can significantly increase logical error rates",
/// Sec. 8.1), while the rest stay near `p0` over the horizon. Each
/// calibration window isolates the due qubits up to the `Δd` budget.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Params {
    /// Code distance (the paper uses 11).
    pub d: usize,
    /// Syndrome-extraction rounds per Monte-Carlo shot.
    pub rounds: usize,
    /// Freshly calibrated per-channel error rate.
    pub p0: f64,
    /// Error rate that marks a qubit as due for calibration.
    pub p_tar: f64,
    /// Number of fast-drifting data qubits.
    pub fast_drifters: usize,
    /// Drift constant of the fast drifters (hours per 10x).
    pub fast_t_drift: f64,
    /// Drift constant of the stable qubits.
    pub slow_t_drift: f64,
    /// Maximum simultaneous isolations (the Δd budget; the paper uses 4).
    pub max_isolations: usize,
    /// Calibration cycle length in hours.
    pub cycle_hours: f64,
    /// Calibration window at the start of each cycle (hours).
    pub window_hours: f64,
    /// Number of cycles simulated.
    pub cycles: usize,
    /// Time samples per cycle.
    pub points_per_cycle: usize,
    /// Monte-Carlo shots per point (rounded up to 64-shot batches).
    pub min_shots: usize,
    /// Early-stop failure budget per point.
    pub max_failures: usize,
    /// Shot cap when chasing failures.
    pub max_shots: usize,
    /// Monte-Carlo worker threads (0 = auto, honouring `CALIQEC_THREADS`).
    /// The measured LERs are identical at any thread count.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig10Params {
    fn default() -> Self {
        Fig10Params {
            d: 11,
            rounds: 11,
            p0: 4e-3,
            p_tar: 8e-3,
            fast_drifters: 6,
            fast_t_drift: 7.0,
            slow_t_drift: 300.0,
            max_isolations: 4,
            cycle_hours: 8.0,
            window_hours: 2.0,
            cycles: 2,
            points_per_cycle: 6,
            min_shots: 100_000,
            max_failures: 100,
            max_shots: 400_000,
            threads: 0,
            seed: 10,
        }
    }
}

impl Fig10Params {
    /// Reduced parameters for fast tests.
    pub fn quick() -> Self {
        Fig10Params {
            d: 5,
            rounds: 3,
            fast_drifters: 2,
            points_per_cycle: 2,
            min_shots: 2_000,
            max_failures: 30,
            max_shots: 8_000,
            ..Fig10Params::default()
        }
    }
}

/// One scenario sample.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioPoint {
    /// Measured logical error rate per shot.
    pub ler: f64,
    /// Binomial standard error.
    pub std_err: f64,
    /// Effective code distance of the layout at this instant.
    pub distance: usize,
    /// Physical qubits in use.
    pub physical_qubits: usize,
}

/// One time sample across the scenarios.
#[derive(Clone, Debug)]
pub struct Fig10Point {
    /// Hours since the start of the run.
    pub hours: f64,
    /// Per-scenario measurements.
    pub scenarios: BTreeMap<Scenario, ScenarioPoint>,
}

/// Result of the Figure 10 experiment.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// The LER target line `LER(d, p_tar)`.
    pub ler_target: f64,
    /// Pristine physical qubit count.
    pub baseline_qubits: usize,
    /// Time series.
    pub points: Vec<Fig10Point>,
}

impl Fig10Result {
    /// Peak LER of a scenario over the run.
    pub fn peak(&self, s: Scenario) -> f64 {
        self.points
            .iter()
            .filter_map(|p| p.scenarios.get(&s))
            .map(|sp| sp.ler)
            .fold(0.0, f64::max)
    }

    /// Peak extra physical qubits of a scenario relative to the baseline.
    pub fn peak_qubit_overhead(&self, s: Scenario) -> f64 {
        let peak = self
            .points
            .iter()
            .filter_map(|p| p.scenarios.get(&s))
            .map(|sp| sp.physical_qubits)
            .max()
            .unwrap_or(self.baseline_qubits);
        peak as f64 / self.baseline_qubits as f64 - 1.0
    }
}

/// Per-data-qubit drift state.
struct QubitDrift {
    coord: Coord,
    t_drift: f64,
    last_cal: f64,
}

impl QubitDrift {
    fn p_at(&self, t: f64, p0: f64) -> f64 {
        (p0 * 10f64.powf((t - self.last_cal) / self.t_drift)).min(0.3)
    }
}

/// Runs the Figure 10 experiment.
pub fn run(params: &Fig10Params) -> Fig10Result {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let pristine = rotated_patch(params.d, params.d);
    let baseline_qubits = pristine.num_physical_qubits();
    let data: Vec<Coord> = pristine.data.iter().copied().collect();
    // Heterogeneous drift, shared across scenarios: a few fast drifters
    // (jittered around `fast_t_drift`) among otherwise-stable qubits.
    let mut t_drifts: Vec<f64> = vec![params.slow_t_drift; data.len()];
    let mut fast_idx: Vec<usize> = (0..data.len()).collect();
    // Deterministic shuffle via the seeded rng.
    for i in (1..fast_idx.len()).rev() {
        let j = rand::RngExt::random_range(&mut rng, 0..=i);
        fast_idx.swap(i, j);
    }
    for (k, &i) in fast_idx.iter().take(params.fast_drifters).enumerate() {
        t_drifts[i] = params.fast_t_drift * (0.8 + 0.1 * k as f64);
    }

    let ler_target = ler(params.d, params.p_tar);
    let total_points = params.cycles * params.points_per_cycle;
    let mut points = Vec::new();

    // Per-scenario calibration state.
    let mut states: BTreeMap<Scenario, Vec<QubitDrift>> = Scenario::ALL
        .iter()
        .map(|&s| {
            (
                s,
                data.iter()
                    .zip(&t_drifts)
                    .map(|(&coord, &t_drift)| QubitDrift {
                        coord,
                        t_drift,
                        last_cal: 0.0,
                    })
                    .collect(),
            )
        })
        .collect();

    for k in 0..total_points {
        let t = (k as f64 + 0.5) * params.cycle_hours / params.points_per_cycle as f64;
        let cycle_pos = t % params.cycle_hours;
        let in_window = t >= params.cycle_hours && cycle_pos < params.window_hours;
        let mut samples = BTreeMap::new();
        for s in Scenario::ALL {
            let calibrates = s != Scenario::NoCalibration;
            let enlarges = s == Scenario::Full;
            let qubits = states.get_mut(&s).expect("scenario state");

            // During the window, the most-drifted due qubits are isolated
            // (respecting the Δd budget); they return freshly calibrated
            // when the window closes.
            let mut isolated: Vec<Coord> = Vec::new();
            if calibrates {
                if in_window {
                    let mut due: Vec<(f64, Coord)> = qubits
                        .iter()
                        .filter(|q| q.p_at(t, params.p0) > params.p_tar)
                        .map(|q| (q.p_at(t, params.p0), q.coord))
                        .collect();
                    due.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite rates"));
                    isolated = due
                        .into_iter()
                        .take(params.max_isolations)
                        .map(|(_, c)| c)
                        .collect();
                } else if cycle_pos >= params.window_hours {
                    // Window over: the isolated batch returns calibrated.
                    let window_start = t - cycle_pos + params.window_hours;
                    let mut due: Vec<usize> = (0..qubits.len())
                        .filter(|&i| {
                            t >= params.cycle_hours
                                && qubits[i].p_at(window_start, params.p0) > params.p_tar
                                && qubits[i].last_cal + params.cycle_hours * 0.5 < window_start
                        })
                        .collect();
                    due.sort_by(|&a, &b| {
                        qubits[b]
                            .p_at(window_start, params.p0)
                            .partial_cmp(&qubits[a].p_at(window_start, params.p0))
                            .expect("finite rates")
                    });
                    for &i in due.iter().take(params.max_isolations) {
                        qubits[i].last_cal = window_start;
                    }
                }
            }

            // Build the layout of this instant.
            let mut patch = DeformedPatch::new(Lattice::Square, params.d, params.d);
            let mut actually_isolated = Vec::new();
            for &c in &isolated {
                if patch.apply(DeformInstruction::DataQRm { qubit: c }).is_ok() {
                    actually_isolated.push(c);
                }
            }
            if enlarges {
                for i in 0..(2 * 4) {
                    if code_distance(&patch.layout().expect("valid")).min() >= params.d {
                        break;
                    }
                    let side = if i % 2 == 0 {
                        Side::Right
                    } else {
                        Side::Bottom
                    };
                    let _ = patch.apply(DeformInstruction::PatchQAd { side });
                }
            }
            let layout = patch.layout().expect("valid layout");
            let distance = code_distance(&layout).min();

            // Noise of this instant: baseline p0 channels with per-qubit
            // drift overrides (isolated qubits are out of the circuit).
            let mut noise = NoiseModel::uniform(params.p0);
            for q in qubits.iter() {
                if layout.data.contains(&q.coord) {
                    noise.drift_qubit(q.coord, q.p_at(t, params.p0));
                }
            }
            let mem = memory_circuit(&layout, &noise, params.rounds, MemoryBasis::Z);
            let graph = graph_for_circuit(&mem.circuit);
            let est = LerEngine::new(params.threads)
                .estimate_circuit(
                    &mem.circuit,
                    &|| UnionFindDecoder::new(graph.clone()),
                    SampleOptions {
                        min_shots: params.min_shots,
                        max_failures: params.max_failures,
                        max_shots: params.max_shots,
                    },
                    rng.random(),
                )
                .estimate;
            samples.insert(
                s,
                ScenarioPoint {
                    ler: est.per_shot(),
                    std_err: est.std_err(),
                    distance,
                    physical_qubits: layout.num_physical_qubits(),
                },
            );
        }
        points.push(Fig10Point {
            hours: t,
            scenarios: samples,
        });
    }
    Fig10Result {
        ler_target,
        baseline_qubits,
        points,
    }
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: LER dynamics with error drift (target LER = {})",
            fmt_num(self.ler_target)
        )?;
        let mut t = TextTable::new([
            "hours",
            "no-cal LER",
            "iso-only LER (d)",
            "full LER (d, qubits)",
        ]);
        for p in &self.points {
            let nc = &p.scenarios[&Scenario::NoCalibration];
            let iso = &p.scenarios[&Scenario::IsolationOnly];
            let full = &p.scenarios[&Scenario::Full];
            t.row([
                format!("{:.1}", p.hours),
                fmt_num(nc.ler),
                format!("{} (d={})", fmt_num(iso.ler), iso.distance),
                format!(
                    "{} (d={}, {} qubits)",
                    fmt_num(full.ler),
                    full.distance,
                    full.physical_qubits
                ),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "peak qubit overhead of the full scheme: {:.1}% (paper: ~14%)",
            self.peak_qubit_overhead(Scenario::Full) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shapes() {
        let r = run(&Fig10Params::quick());
        assert_eq!(r.points.len(), 4);
        // No-calibration LER at the end exceeds the start.
        let first = r.points.first().unwrap().scenarios[&Scenario::NoCalibration].ler;
        let last = r.points.last().unwrap().scenarios[&Scenario::NoCalibration].ler;
        assert!(
            last >= first,
            "no-cal should not improve: {first} -> {last}"
        );
        // Enlargement never reduces qubits below baseline.
        assert!(r.peak_qubit_overhead(Scenario::Full) >= 0.0);
    }

    #[test]
    fn full_scheme_keeps_distance() {
        let r = run(&Fig10Params::quick());
        for p in &r.points {
            let full = &p.scenarios[&Scenario::Full];
            assert!(full.distance >= 5, "full scheme distance {}", full.distance);
        }
    }
}
