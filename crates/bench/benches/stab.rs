//! Micro-benchmarks of the stabilizer-simulation substrate: Pauli-frame
//! sampling throughput, tableau execution, and detector-error-model
//! extraction on surface-code memory circuits.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_stab::{
    chunk_seed, extract_dem, noiseless_shot, BatchEvents, CompiledCircuit, FrameSampler,
    FrameState, WideFrameState, BATCH, LANES,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn memory(d: usize) -> caliqec_code::MemoryCircuit {
    memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(1e-3),
        d,
        MemoryBasis::Z,
    )
}

fn bench_frame_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_sampler");
    for d in [3usize, 5, 7, 9] {
        let mem = memory(d);
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("memory_z", d), &mem, |b, mem| {
            let mut sampler = FrameSampler::new(&mem.circuit);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampler.sample_batch(&mut rng));
        });
    }
    group.finish();
}

fn bench_tableau_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_shot");
    for d in [3usize, 5] {
        let mem = memory(d);
        group.bench_with_input(BenchmarkId::new("memory_z", d), &mem, |b, mem| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| noiseless_shot(&mem.circuit, &mut rng));
        });
    }
    group.finish();
}

/// The word-level SIMD sampler: LANES batches sampled in lockstep over
/// `[u64; LANES]` rows vs the same batches sampled one at a time. Both
/// paths draw from identical per-batch RNG streams and produce
/// bit-identical events (`wide_lanes_are_bit_identical_to_narrow_batches`
/// in caliqec-stab); only throughput differs. d = 15 is the dense-regime
/// workload whose sample phase the engine batches this way.
fn bench_sample_simd(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_simd");
    group.sample_size(20);
    for d in [11usize, 15] {
        let mem = memory(d);
        let compiled = CompiledCircuit::new(&mem.circuit);
        group.throughput(Throughput::Elements((LANES * BATCH) as u64));
        group.bench_with_input(BenchmarkId::new("narrow", d), &compiled, |b, compiled| {
            let mut state = FrameState::new(compiled);
            let mut events = BatchEvents::default();
            let mut batch = 0u64;
            b.iter(|| {
                for _ in 0..LANES {
                    let mut rng = StdRng::seed_from_u64(chunk_seed(0x50D1, batch));
                    batch += 1;
                    compiled.sample_batch_into(&mut state, &mut rng, &mut events);
                }
                events.detectors.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("wide", d), &compiled, |b, compiled| {
            let mut state = WideFrameState::new(compiled);
            let mut events: [BatchEvents; LANES] = std::array::from_fn(|_| BatchEvents::default());
            let mut batch = 0u64;
            b.iter(|| {
                let mut rngs: [StdRng; LANES] = std::array::from_fn(|l| {
                    StdRng::seed_from_u64(chunk_seed(0x50D1, batch + l as u64))
                });
                batch += LANES as u64;
                compiled.sample_batches_wide_into(&mut state, &mut rngs, &mut events);
                events[0].detectors.len()
            });
        });
    }
    group.finish();
}

fn bench_dem_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_extraction");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let mem = memory(d);
        group.bench_with_input(BenchmarkId::new("memory_z", d), &mem, |b, mem| {
            b.iter(|| extract_dem(&mem.circuit));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_sampler,
    bench_tableau_shot,
    bench_sample_simd,
    bench_dem_extraction
);
criterion_main!(benches);
