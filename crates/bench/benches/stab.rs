//! Micro-benchmarks of the stabilizer-simulation substrate: Pauli-frame
//! sampling throughput, tableau execution, and detector-error-model
//! extraction on surface-code memory circuits.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_stab::{extract_dem, noiseless_shot, FrameSampler, BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn memory(d: usize) -> caliqec_code::MemoryCircuit {
    memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(1e-3),
        d,
        MemoryBasis::Z,
    )
}

fn bench_frame_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_sampler");
    for d in [3usize, 5, 7, 9] {
        let mem = memory(d);
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("memory_z", d), &mem, |b, mem| {
            let mut sampler = FrameSampler::new(&mem.circuit);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampler.sample_batch(&mut rng));
        });
    }
    group.finish();
}

fn bench_tableau_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_shot");
    for d in [3usize, 5] {
        let mem = memory(d);
        group.bench_with_input(BenchmarkId::new("memory_z", d), &mem, |b, mem| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| noiseless_shot(&mem.circuit, &mut rng));
        });
    }
    group.finish();
}

fn bench_dem_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_extraction");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let mem = memory(d);
        group.bench_with_input(BenchmarkId::new("memory_z", d), &mem, |b, mem| {
            b.iter(|| extract_dem(&mem.circuit));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_sampler,
    bench_tableau_shot,
    bench_dem_extraction
);
criterion_main!(benches);
