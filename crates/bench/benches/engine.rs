//! Benchmarks of the compiled Monte-Carlo LER engine: compiled vs.
//! interpreting frame-sampling throughput, and an `LerEngine` thread sweep
//! (1/2/4/8 workers) on the d = 11 memory circuit. The thread sweep pins
//! the shot budget so the per-thread speedup is directly comparable.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{graph_for_circuit, LerEngine, SampleOptions, UnionFindDecoder};
use caliqec_obs::ObsSink;
use caliqec_stab::{BatchEvents, CompiledCircuit, FrameSampler, FrameState, BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn memory(d: usize) -> caliqec_code::MemoryCircuit {
    memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(1e-3),
        d,
        MemoryBasis::Z,
    )
}

/// Compiled instruction stream vs. the re-walking `FrameSampler` on the
/// same d = 11 circuit: both emit one 64-shot batch per iteration.
fn bench_sampling_throughput(c: &mut Criterion) {
    let mem = memory(11);
    let mut group = c.benchmark_group("engine_sampling_d11");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("interpreting", |b| {
        let mut sampler = FrameSampler::new(&mem.circuit);
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| sampler.sample_batch(&mut rng));
    });
    group.bench_function("compiled", |b| {
        let compiled = CompiledCircuit::new(&mem.circuit);
        let mut state = FrameState::new(&compiled);
        let mut events = BatchEvents::default();
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| compiled.sample_batch_into(&mut state, &mut rng, &mut events));
    });
    group.finish();
}

/// Full sample + decode pipeline at a fixed shot budget, swept over worker
/// counts. On a single-core host the sweep is flat; with cores available it
/// shows the engine's scaling.
fn bench_engine_thread_sweep(c: &mut Criterion) {
    let mem = memory(11);
    let compiled = CompiledCircuit::new(&mem.circuit);
    let graph = graph_for_circuit(&mem.circuit);
    let options = SampleOptions {
        min_shots: 64 * BATCH,
        max_failures: 0,
        max_shots: 0,
    };
    let mut group = c.benchmark_group("engine_thread_sweep_d11");
    group.sample_size(2);
    group.throughput(Throughput::Elements(options.min_shots as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("union_find", threads),
            &threads,
            |b, &threads| {
                let engine = LerEngine::new(threads);
                let factory = || UnionFindDecoder::new(graph.clone());
                b.iter(|| engine.estimate(&compiled, &factory, options, 0xD11));
            },
        );
    }
    group.finish();
}

/// Same d = 11 pipeline with the observability sink disabled vs. enabled:
/// the enabled run pays two clock reads per decoded shot plus the
/// lock-free counter traffic, and the issue budget caps the gap at 2%.
fn bench_obs_overhead(c: &mut Criterion) {
    let mem = memory(11);
    let compiled = CompiledCircuit::new(&mem.circuit);
    let graph = graph_for_circuit(&mem.circuit);
    let options = SampleOptions {
        min_shots: 64 * BATCH,
        max_failures: 0,
        max_shots: 0,
    };
    let mut group = c.benchmark_group("engine_obs_overhead_d11");
    group.sample_size(2);
    group.throughput(Throughput::Elements(options.min_shots as u64));
    for (name, sink) in [
        ("obs_off", ObsSink::disabled()),
        ("obs_on", ObsSink::enabled()),
    ] {
        group.bench_function(name, |b| {
            let engine = LerEngine::new(1).with_obs(sink.clone());
            let factory = || UnionFindDecoder::new(graph.clone());
            b.iter(|| engine.estimate(&compiled, &factory, options, 0xD11));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sampling_throughput,
    bench_engine_thread_sweep,
    bench_obs_overhead
);
criterion_main!(benches);
