//! Micro-benchmarks of the decoders: union-find vs exact MWPM on
//! surface-code syndromes of growing distance and defect density.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{graph_for_circuit, Decoder, MatchingGraph, MwpmDecoder, UnionFindDecoder};
use caliqec_stab::FrameSampler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a matching graph and a stream of sampled syndromes for distance d.
fn setup(d: usize, shots: usize) -> (MatchingGraph, Vec<Vec<usize>>) {
    let mem = memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(3e-3),
        d,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let mut sampler = FrameSampler::new(&mem.circuit);
    let mut rng = StdRng::seed_from_u64(3);
    let mut syndromes = Vec::new();
    while syndromes.len() < shots {
        let ev = sampler.sample_batch(&mut rng);
        for s in 0..caliqec_stab::BATCH {
            let defects: Vec<usize> = ev
                .detectors
                .iter()
                .enumerate()
                .filter(|(_, w)| (*w >> s) & 1 == 1)
                .map(|(i, _)| i)
                .collect();
            if !defects.is_empty() {
                syndromes.push(defects);
            }
            if syndromes.len() >= shots {
                break;
            }
        }
    }
    (graph, syndromes)
}

fn bench_union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find_decode");
    for d in [3usize, 5, 7, 9] {
        let (graph, syndromes) = setup(d, 64);
        group.bench_with_input(BenchmarkId::new("d", d), &(), |b, _| {
            let mut dec = UnionFindDecoder::new(graph.clone());
            let mut i = 0;
            b.iter(|| {
                let s = &syndromes[i % syndromes.len()];
                i += 1;
                dec.decode(s)
            });
        });
    }
    group.finish();
}

fn bench_mwpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwpm_decode");
    for d in [3usize, 5, 7] {
        let (graph, syndromes) = setup(d, 64);
        group.bench_with_input(BenchmarkId::new("d", d), &(), |b, _| {
            let mut dec = MwpmDecoder::new(graph.clone());
            let mut i = 0;
            b.iter(|| {
                let s = &syndromes[i % syndromes.len()];
                i += 1;
                dec.decode(s)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_union_find, bench_mwpm);
criterion_main!(benches);
