//! Micro-benchmarks of the decoders: union-find vs exact MWPM on
//! surface-code syndromes of growing distance and defect density, plus
//! before/after comparisons for the syndrome-sparse decode pipeline —
//! dense vs word-sparse extraction, the allocate-per-call reference
//! union-find vs the scratch-reusing one, and cached vs uncached MWPM.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_match::{
    graph_for_circuit, ClusterTier, Decoder, MatchingGraph, MwpmDecoder, Predecoder,
    ReferenceUnionFind, UnionFindDecoder, MAX_CLUSTER_DEFECTS,
};
use caliqec_stab::{extract_dem, BatchEvents, FrameSampler, RateTable, SparseBatch, BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a matching graph and a stream of sampled syndromes for distance d.
fn setup(d: usize, shots: usize) -> (MatchingGraph, Vec<Vec<usize>>) {
    let mem = memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(3e-3),
        d,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let mut sampler = FrameSampler::new(&mem.circuit);
    let mut rng = StdRng::seed_from_u64(3);
    let mut syndromes = Vec::new();
    while syndromes.len() < shots {
        let ev = sampler.sample_batch(&mut rng);
        for s in 0..BATCH {
            let defects: Vec<usize> = ev
                .detectors
                .iter()
                .enumerate()
                .filter(|(_, w)| (*w >> s) & 1 == 1)
                .map(|(i, _)| i)
                .collect();
            if !defects.is_empty() {
                syndromes.push(defects);
            }
            if syndromes.len() >= shots {
                break;
            }
        }
    }
    (graph, syndromes)
}

/// Pre-samples whole 64-shot batches (for extraction / pipeline benches).
fn setup_batches(d: usize, batches: usize) -> (MatchingGraph, Vec<BatchEvents>) {
    let mem = memory_circuit(
        &rotated_patch(d, d),
        &NoiseModel::uniform(3e-3),
        d,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let mut sampler = FrameSampler::new(&mem.circuit);
    let mut rng = StdRng::seed_from_u64(3);
    let evs = (0..batches)
        .map(|_| sampler.sample_batch(&mut rng))
        .collect();
    (graph, evs)
}

fn bench_union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find_decode");
    for d in [3usize, 5, 7, 9] {
        let (graph, syndromes) = setup(d, 64);
        group.bench_with_input(BenchmarkId::new("d", d), &(), |b, _| {
            let mut dec = UnionFindDecoder::new(graph.clone());
            let mut i = 0;
            b.iter(|| {
                let s = &syndromes[i % syndromes.len()];
                i += 1;
                dec.decode(s)
            });
        });
    }
    group.finish();
}

fn bench_mwpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwpm_decode");
    for d in [3usize, 5, 7] {
        let (graph, syndromes) = setup(d, 64);
        group.bench_with_input(BenchmarkId::new("d", d), &(), |b, _| {
            let mut dec = MwpmDecoder::new(graph.clone());
            let mut i = 0;
            b.iter(|| {
                let s = &syndromes[i % syndromes.len()];
                i += 1;
                dec.decode(s)
            });
        });
    }
    group.finish();
}

/// Dense per-shot extraction (the historic `for_each_shot` shape: every
/// shot scans every detector word) vs word-sparse extraction, per 64-shot
/// batch on the d = 11 circuit-noise workload.
fn bench_extraction(c: &mut Criterion) {
    let (_, evs) = setup_batches(11, 16);
    let mut group = c.benchmark_group("extraction_d11");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("dense", |b| {
        let mut i = 0;
        b.iter(|| {
            let ev = &evs[i % evs.len()];
            i += 1;
            let mut total = 0usize;
            for s in 0..BATCH {
                let defects: Vec<usize> = ev
                    .detectors
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| (*w >> s) & 1 == 1)
                    .map(|(i, _)| i)
                    .collect();
                total += defects.len();
            }
            total
        });
    });
    group.bench_function("sparse", |b| {
        let mut sparse = SparseBatch::new();
        let mut i = 0;
        b.iter(|| {
            let ev = &evs[i % evs.len()];
            i += 1;
            sparse.extract(ev);
            let mut total = 0usize;
            for s in 0..BATCH {
                total += sparse.defects(s).len();
            }
            total
        });
    });
    group.finish();
}

/// The decode phase end to end (extraction + union-find), per 64-shot batch
/// on d = 11: the historic shape (dense extraction + allocate-per-call
/// reference decoder) vs the sparse pipeline (word-sparse extraction +
/// scratch-reusing decoder). This is the headline before/after number.
fn bench_decode_pipeline(c: &mut Criterion) {
    let (graph, evs) = setup_batches(11, 16);
    let mut group = c.benchmark_group("decode_pipeline_d11");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("dense_reference", |b| {
        let mut dec = ReferenceUnionFind::new(graph.clone());
        let mut i = 0;
        b.iter(|| {
            let ev = &evs[i % evs.len()];
            i += 1;
            let mut failures = 0usize;
            for s in 0..BATCH {
                let defects: Vec<usize> = ev
                    .detectors
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| (*w >> s) & 1 == 1)
                    .map(|(i, _)| i)
                    .collect();
                let mut obs = 0u64;
                for (k, w) in ev.observables.iter().enumerate() {
                    obs |= ((w >> s) & 1) << k;
                }
                if dec.decode(&defects) != obs {
                    failures += 1;
                }
            }
            failures
        });
    });
    group.bench_function("sparse_scratch", |b| {
        let mut dec = UnionFindDecoder::new(graph.clone());
        let mut sparse = SparseBatch::new();
        let mut i = 0;
        b.iter(|| {
            let ev = &evs[i % evs.len()];
            i += 1;
            sparse.extract(ev);
            let mut failures = 0usize;
            for s in 0..BATCH {
                if dec.decode(sparse.defects(s)) != sparse.observables(s) {
                    failures += 1;
                }
            }
            failures
        });
    });
    group.finish();
}

/// MWPM with the per-source shortest-path cache and early-terminating
/// Dijkstra vs the historic compute-everything path, on repeated d = 7
/// syndromes.
fn bench_mwpm_cache(c: &mut Criterion) {
    let (graph, syndromes) = setup(7, 64);
    let mut group = c.benchmark_group("mwpm_cache_d7");
    group.sample_size(20);
    group.bench_function("uncached", |b| {
        let mut dec = MwpmDecoder::without_cache(graph.clone());
        let mut i = 0;
        b.iter(|| {
            let s = &syndromes[i % syndromes.len()];
            i += 1;
            dec.decode(s)
        });
    });
    group.bench_function("cached", |b| {
        let mut dec = MwpmDecoder::new(graph.clone());
        let mut i = 0;
        b.iter(|| {
            let s = &syndromes[i % syndromes.len()];
            i += 1;
            dec.decode(s)
        });
    });
    group.finish();
}

/// The two-tier fast path vs the plain decoder on the same batches: shots
/// the predecoder certifies never reach the union-find machinery. d = 7 is
/// the sparse regime where certification fires on a meaningful fraction of
/// shots; at d ≥ 11 circuit noise the typical shot is too dense to certify
/// and the two curves converge (the dispatch overhead is the difference).
fn bench_two_tier(c: &mut Criterion) {
    let (graph, evs) = setup_batches(7, 16);
    let mut group = c.benchmark_group("two_tier_d7");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("predecode_off", |b| {
        let mut dec = UnionFindDecoder::new(graph.clone());
        let mut sparse = SparseBatch::new();
        let mut i = 0;
        b.iter(|| {
            let ev = &evs[i % evs.len()];
            i += 1;
            sparse.extract(ev);
            let mut failures = 0usize;
            for s in 0..BATCH {
                if dec.decode(sparse.defects(s)) != sparse.observables(s) {
                    failures += 1;
                }
            }
            failures
        });
    });
    group.bench_function("predecode_on", |b| {
        let mut pre = Predecoder::new(&graph);
        let mut dec = UnionFindDecoder::new(graph.clone());
        let mut sparse = SparseBatch::new();
        let mut i = 0;
        b.iter(|| {
            let ev = &evs[i % evs.len()];
            i += 1;
            sparse.extract(ev);
            let mut failures = 0usize;
            for s in 0..BATCH {
                let defects = sparse.defects(s);
                let mask = pre
                    .predecode(defects)
                    .unwrap_or_else(|| dec.decode(defects));
                if mask != sparse.observables(s) {
                    failures += 1;
                }
            }
            failures
        });
    });
    group.finish();
}

/// The dense-regime cluster tier at the d = 15 wall: monolithic union-find
/// over whole dense shots (`cluster_off`) vs flood-decomposition with
/// certified peeling plus one union-find call on the residual union
/// (`cluster_on`), plus the decomposition cost alone (`decompose_only`).
/// Shots are the p = 1e-3 circuit-noise stream restricted to the dense
/// regime (> MAX_CLUSTER_DEFECTS defects), i.e. exactly the shots the
/// engine routes through the tier.
fn bench_dense_cluster(c: &mut Criterion) {
    let mem = memory_circuit(
        &rotated_patch(15, 15),
        &NoiseModel::uniform(1e-3),
        15,
        MemoryBasis::Z,
    );
    let graph = graph_for_circuit(&mem.circuit);
    let mut sampler = FrameSampler::new(&mem.circuit);
    let mut rng = StdRng::seed_from_u64(15);
    let mut sparse = SparseBatch::new();
    let mut dense: Vec<Vec<usize>> = Vec::new();
    while dense.len() < 128 {
        let ev = sampler.sample_batch(&mut rng);
        sparse.extract(&ev);
        for s in 0..BATCH {
            if sparse.defect_count(s) > MAX_CLUSTER_DEFECTS {
                dense.push(sparse.defects(s).to_vec());
                if dense.len() >= 128 {
                    break;
                }
            }
        }
    }
    let mut group = c.benchmark_group("dense_cluster_d15");
    group.sample_size(20);
    group.bench_function("cluster_off", |b| {
        let mut dec = UnionFindDecoder::new(graph.clone());
        let mut i = 0;
        b.iter(|| {
            let s = &dense[i % dense.len()];
            i += 1;
            dec.decode(s)
        });
    });
    group.bench_function("cluster_on", |b| {
        let mut tier = ClusterTier::new(&graph);
        let mut dec = UnionFindDecoder::new(graph.clone());
        let mut i = 0;
        b.iter(|| {
            let s = &dense[i % dense.len()];
            i += 1;
            let out = tier.decompose(s);
            if out.fully_peeled() {
                out.mask
            } else {
                out.mask ^ dec.decode(tier.residual_defects())
            }
        });
    });
    group.bench_function("decompose_only", |b| {
        let mut tier = ClusterTier::new(&graph);
        let mut i = 0;
        b.iter(|| {
            let s = &dense[i % dense.len()];
            i += 1;
            tier.decompose(s).mask
        });
    });
    group.finish();
}

/// Incremental calibration update vs full rebuild: reweighting the graph
/// in place from provenance (`MatchingGraph::reweight`) against the
/// from-scratch path a naive calibration feed forces (`DetectorErrorModel::
/// reweighted` + `MatchingGraph::from_dem`). The two produce bit-identical
/// weights (see `tests/reweight_validation.rs`); only the cost differs —
/// the incremental path must be at least an order of magnitude cheaper at
/// d = 11, since it skips hyperedge decomposition, edge sorting, and CSR
/// assembly.
fn bench_reweight(c: &mut Criterion) {
    for d in [7usize, 11] {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(3e-3),
            d,
            MemoryBasis::Z,
        );
        let dem = extract_dem(&mem.circuit);
        let graph = MatchingGraph::from_dem(&dem);
        let rates = RateTable::uniform(4e-3);
        let mut group = c.benchmark_group(format!("reweight_d{d}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(graph.edges().len() as u64));
        group.bench_function("incremental", |b| {
            let mut g = graph.clone();
            b.iter(|| {
                g.reweight(&rates).expect("graph carries provenance");
                g.weight_epoch()
            });
        });
        group.bench_function("rebuild_from_dem", |b| {
            b.iter(|| {
                let fresh = MatchingGraph::from_dem(&dem.reweighted(&rates));
                fresh.edges().len()
            });
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_union_find,
    bench_mwpm,
    bench_extraction,
    bench_decode_pipeline,
    bench_mwpm_cache,
    bench_two_tier,
    bench_dense_cluster,
    bench_reweight
);
criterion_main!(benches);
