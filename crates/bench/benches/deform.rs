//! Micro-benchmarks of the deformation instruction set: instruction
//! application (layout rewrite + validation), distance computation, and
//! memory-circuit generation on deformed layouts.

use caliqec_code::{
    code_distance, data_coord, memory_circuit, DeformInstruction, DeformedPatch, Lattice,
    MemoryBasis, NoiseModel, Side,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_data_q_rm(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_q_rm");
    for d in [5usize, 9, 13, 17] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            b.iter(|| {
                let mut patch = DeformedPatch::new(Lattice::Square, d, d);
                patch
                    .apply(DeformInstruction::DataQRm {
                        qubit: data_coord(d / 2, d / 2),
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_enlargement(c: &mut Criterion) {
    let mut group = c.benchmark_group("patch_q_ad");
    for d in [5usize, 9, 13] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            b.iter(|| {
                let mut patch = DeformedPatch::new(Lattice::Square, d, d);
                patch
                    .apply(DeformInstruction::DataQRm {
                        qubit: data_coord(d / 2, d / 2),
                    })
                    .unwrap();
                patch
                    .apply(DeformInstruction::PatchQAd { side: Side::Right })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_distance");
    for d in [5usize, 11, 17, 25] {
        let layout = caliqec_code::rotated_patch(d, d);
        group.bench_with_input(BenchmarkId::new("pristine", d), &layout, |b, layout| {
            b.iter(|| code_distance(layout));
        });
    }
    group.finish();
}

fn bench_memory_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_circuit");
    group.sample_size(20);
    for d in [5usize, 9, 13] {
        let layout = caliqec_code::rotated_patch(d, d);
        let noise = NoiseModel::uniform(1e-3);
        group.bench_with_input(BenchmarkId::new("square", d), &layout, |b, layout| {
            b.iter(|| memory_circuit(layout, &noise, d, MemoryBasis::Z));
        });
    }
    let hex = caliqec_code::heavy_hex_patch(5, 5);
    let noise = NoiseModel::uniform(1e-3);
    group.bench_function("heavy_hex_d5", |b| {
        b.iter(|| memory_circuit(&hex, &noise, 5, MemoryBasis::Z));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_data_q_rm,
    bench_enlargement,
    bench_distance,
    bench_memory_generation
);
criterion_main!(benches);
