//! End-to-end benchmarks: full LER estimation (sample + decode) on memory
//! experiments, and Table 2 policy evaluation.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_ftqc::{evaluate, BenchProgram, EvalConfig, Policy};
use caliqec_match::{estimate_ler, graph_for_circuit, SampleOptions, UnionFindDecoder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ler_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ler_estimation");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let mem = memory_circuit(
            &rotated_patch(d, d),
            &NoiseModel::uniform(2e-3),
            d,
            MemoryBasis::Z,
        );
        let graph = graph_for_circuit(&mem.circuit);
        let shots = 6400;
        group.throughput(Throughput::Elements(shots as u64));
        group.bench_with_input(BenchmarkId::new("d", d), &mem, |b, mem| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let mut dec = UnionFindDecoder::new(graph.clone());
                estimate_ler(
                    &mem.circuit,
                    &mut dec,
                    SampleOptions {
                        min_shots: shots,
                        ..Default::default()
                    },
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

fn bench_policy_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_evaluation");
    group.sample_size(10);
    let program = BenchProgram::hubbard(10, 10);
    let config = EvalConfig::default();
    for policy in [
        Policy::NoCalibration,
        Policy::Lsc,
        Policy::Qecali { delta_d: 4 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("policy", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut rng = StdRng::seed_from_u64(8);
                b.iter(|| evaluate(&program, 25, policy, &config, &mut rng));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ler_estimation, bench_policy_evaluation);
criterion_main!(benches);
