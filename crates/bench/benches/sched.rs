//! Micro-benchmarks of the scheduler: Algorithm 1 grouping, workload
//! clustering, and adaptive intra-group batching on devices of growing size.

use caliqec_device::{DeviceConfig, DeviceModel, DriftDistribution};
use caliqec_sched::{
    adaptive_schedule, assign_groups, build_plan, cluster_workloads, GateDrift, PlanConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn device(side: usize) -> DeviceModel {
    let mut rng = StdRng::seed_from_u64(5);
    DeviceModel::synthetic(
        &DeviceConfig {
            rows: side,
            cols: side,
            drift: DriftDistribution::current(),
            ..DeviceConfig::default()
        },
        &mut rng,
    )
}

fn drifts(device: &DeviceModel) -> Vec<GateDrift> {
    device
        .gates
        .iter()
        .enumerate()
        .map(|(gate, info)| GateDrift {
            gate,
            drift_hours: info.drift.time_to_reach(5e-3).max(1e-3),
        })
        .collect()
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_grouping");
    for side in [8usize, 16, 24] {
        let dev = device(side);
        let g = drifts(&dev);
        group.bench_with_input(BenchmarkId::new("gates", g.len()), &g, |b, g| {
            b.iter(|| assign_groups(g));
        });
    }
    group.finish();
}

fn bench_adaptive_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_schedule");
    group.sample_size(20);
    for side in [8usize, 12, 16] {
        let dev = device(side);
        let gates: Vec<usize> = (0..dev.gates.len()).step_by(4).collect();
        let workloads = cluster_workloads(&dev, &gates);
        group.bench_with_input(
            BenchmarkId::new("workloads", workloads.len()),
            &workloads,
            |b, w| {
                b.iter(|| adaptive_schedule(w, 8));
            },
        );
    }
    group.finish();
}

fn bench_full_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_plan");
    group.sample_size(10);
    for side in [8usize, 12] {
        let dev = device(side);
        group.bench_with_input(BenchmarkId::new("side", side), &dev, |b, dev| {
            b.iter(|| build_plan(dev, &PlanConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_adaptive_schedule,
    bench_full_plan
);
criterion_main!(benches);
