//! Property-based tests of layouts and deformation: every instruction
//! sequence that applies must leave a valid layout, reintegration restores
//! the pristine patch, and distances behave monotonically.

use caliqec_code::{
    code_distance, data_coord, heavy_hex_patch, rotated_patch, DeformInstruction, DeformedPatch,
    Lattice, Side,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pristine rotated patches of any dimensions validate and have
    /// distance min(rows, cols).
    #[test]
    fn pristine_square_patches_valid(rows in 2usize..9, cols in 2usize..9) {
        let layout = rotated_patch(rows, cols);
        prop_assert!(layout.validate().is_ok());
        prop_assert_eq!(layout.stabilizers.len(), rows * cols - 1);
        let d = code_distance(&layout);
        prop_assert_eq!(d.z, cols);
        prop_assert_eq!(d.x, rows);
    }

    /// Pristine heavy-hex patches validate with the same structure.
    #[test]
    fn pristine_heavy_hex_patches_valid(rows in 2usize..6, cols in 2usize..6) {
        let layout = heavy_hex_patch(rows, cols);
        prop_assert!(layout.validate().is_ok());
        prop_assert_eq!(layout.stabilizers.len(), rows * cols - 1);
        prop_assert_eq!(code_distance(&layout).min(), rows.min(cols));
    }

    /// Any sequence of interior DataQ_RM instructions that applies leaves a
    /// valid layout with positive distance, and full reintegration restores
    /// the pristine patch exactly.
    #[test]
    fn data_q_rm_sequences_preserve_validity(
        holes in prop::collection::vec((1usize..6, 1usize..6), 1..5)
    ) {
        let d = 7;
        let mut patch = DeformedPatch::new(Lattice::Square, d, d);
        let mut applied = 0;
        for (r, c) in holes {
            if patch.apply(DeformInstruction::DataQRm { qubit: data_coord(r, c) }).is_ok() {
                applied += 1;
            }
        }
        let layout = patch.layout().expect("journal stays valid");
        prop_assert!(layout.validate().is_ok());
        prop_assert_eq!(layout.data.len(), d * d - applied);
        prop_assert!(code_distance(&layout).min() >= 1);
        patch.reintegrate_all();
        prop_assert_eq!(patch.layout().unwrap(), rotated_patch(d, d));
    }

    /// Enlargement never decreases the distance; shrinking never increases
    /// it.
    #[test]
    fn patch_resizing_is_monotone(
        grows in prop::collection::vec(0u8..4, 0..4),
        shrinks in prop::collection::vec(0u8..4, 0..2),
    ) {
        let side_of = |v: u8| match v {
            0 => Side::Top,
            1 => Side::Bottom,
            2 => Side::Left,
            _ => Side::Right,
        };
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        let mut last = code_distance(&patch.layout().unwrap()).min();
        for g in grows {
            patch.apply(DeformInstruction::PatchQAd { side: side_of(g) }).unwrap();
            let now = code_distance(&patch.layout().unwrap()).min();
            prop_assert!(now >= last, "growth shrank distance {last} -> {now}");
            last = now;
        }
        for s in shrinks {
            if patch.apply(DeformInstruction::PatchQRm { side: side_of(s) }).is_ok() {
                let now = code_distance(&patch.layout().unwrap()).min();
                prop_assert!(now <= last, "shrink grew distance {last} -> {now}");
                last = now;
            }
        }
    }

    /// Superstabilizer formation conserves stabilizer-count bookkeeping:
    /// every interior DataQ_RM converts 4 stabilizers into 2 superstabilizers
    /// (or fewer at boundaries), never increasing the total.
    #[test]
    fn stabilizer_count_never_increases(r in 0usize..7, c in 0usize..7) {
        let d = 7;
        let mut patch = DeformedPatch::new(Lattice::Square, d, d);
        let before = patch.layout().unwrap().stabilizers.len();
        if patch.apply(DeformInstruction::DataQRm { qubit: data_coord(r, c) }).is_ok() {
            let after = patch.layout().unwrap().stabilizers.len();
            prop_assert!(after < before);
            prop_assert!(after + 4 >= before, "lost too many stabilizers: {before} -> {after}");
        }
    }
}
