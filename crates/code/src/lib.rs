//! # caliqec-code — surface-code layouts and the QECali deformation
//! instruction sets
//!
//! This crate implements the code-structure half of the CaliQEC paper:
//!
//! - [`rotated_patch`]: rotated square-lattice surface-code patches (paper
//!   Fig. 3a, Rigetti-style).
//! - [`heavy_hex_patch`]: heavy-hexagon patches with 7-ancilla "S"-shaped
//!   readout bridges (paper Fig. 3d, IBM-style).
//! - [`DeformInstruction`] / [`DeformedPatch`]: the QECali instruction sets
//!   of paper Table 1 — `DataQ_RM`, `SyndromeQ_RM`, `PatchQ_RM`, `PatchQ_AD`
//!   for square lattices plus `AncQ_RM_HorDeg2`, `AncQ_RM_VerDeg2`,
//!   `AncQ_RM_Deg3` for heavy-hex — which isolate qubits behind temporary
//!   boundaries while preserving the encoded state.
//! - [`code_distance`]: code distance of deformed layouts (the `Δd` loss the
//!   scheduler must compensate).
//! - [`memory_circuit`]: noisy memory-experiment circuits for any valid
//!   layout, ready for `caliqec-stab` sampling and `caliqec-match` decoding.
//!
//! # Example: isolate a drifted qubit, measure the cost, heal the patch
//!
//! ```
//! use caliqec_code::{
//!     code_distance, DeformInstruction, DeformedPatch, Lattice, Side,
//! };
//! use caliqec_code::Coord;
//!
//! let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
//! assert_eq!(code_distance(&patch.layout().unwrap()).min(), 5);
//!
//! // Isolate the drifted data qubit at the patch center for calibration.
//! patch.apply(DeformInstruction::DataQRm { qubit: Coord::new(8, 8) }).unwrap();
//! let hurt = code_distance(&patch.layout().unwrap()).min();
//! assert!(hurt < 5);
//!
//! // Dynamic code enlargement restores the protection level.
//! patch.apply(DeformInstruction::PatchQAd { side: Side::Right }).unwrap();
//! patch.apply(DeformInstruction::PatchQAd { side: Side::Bottom }).unwrap();
//! patch.apply(DeformInstruction::PatchQAd { side: Side::Right }).unwrap();
//! patch.apply(DeformInstruction::PatchQAd { side: Side::Bottom }).unwrap();
//! assert!(code_distance(&patch.layout().unwrap()).min() >= 5);
//!
//! // After calibration, reintegrate the qubit.
//! patch.reintegrate_all();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod deform;
mod distance;
mod draw;
mod heavyhex;
mod layout;
mod memory;
mod square;
mod surgery;

pub use deform::{
    apply_interior, check_gauge_commutation, DeformError, DeformInstruction, DeformedPatch,
    Lattice, Side,
};
pub use distance::{code_distance, CodeDistance};
pub use draw::draw_layout;
pub use heavyhex::{bridge_role, heavy_hex_patch, BridgeRole};
pub use layout::{
    BoundaryInfo, ChainPart, Coord, LayoutError, PatchLayout, Readout, StabKind, Stabilizer,
};
pub use memory::{drift_rate_table, memory_circuit, MemoryBasis, MemoryCircuit, NoiseModel};
pub use square::{data_coord, face_ancilla, face_kind, rotated_patch, PITCH};
pub use surgery::{zz_surgery_circuit, SurgeryCircuit, ZzSurgery};
