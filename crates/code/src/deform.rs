//! The QECali code-deformation instruction sets (paper Sec. 2.2, Sec. 6,
//! Table 1).
//!
//! Square lattice: [`DeformInstruction::DataQRm`],
//! [`DeformInstruction::SyndromeQRm`], [`DeformInstruction::PatchQRm`],
//! [`DeformInstruction::PatchQAd`].
//!
//! Heavy-hexagon: `DataQRm`, [`DeformInstruction::AncQRmHorDeg2`],
//! [`DeformInstruction::AncQRmVerDeg2`], [`DeformInstruction::AncQRmDeg3`],
//! `PatchQRm`, `PatchQAd`.
//!
//! Each instruction rewrites a [`PatchLayout`] — forming superstabilizers
//! that exclude the isolated qubits (so those qubits can be calibrated while
//! QEC continues on the rest) — and every application is validated against
//! the layout invariants plus gauge-level commutation.
//!
//! Patch growth/shrink ([`DeformInstruction::PatchQAd`] / `PatchQRm`) is
//! managed by [`DeformedPatch`], which journals interior instructions and
//! replays them on the resized pristine patch; this matches the paper's usage
//! (enlargement restores the distance lost to interior isolation).

use crate::heavyhex::{bridge_role, heavy_hex_patch, BridgeRole};
use crate::layout::{
    support_product, ChainPart, Coord, LayoutError, PatchLayout, Readout, StabKind, Stabilizer,
};
use crate::square::{rotated_patch, PITCH};
use std::collections::BTreeSet;
use std::fmt;

/// A patch boundary side.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// X-type boundary at the top (smaller rows).
    Top,
    /// X-type boundary at the bottom.
    Bottom,
    /// Z-type boundary at the left (smaller columns).
    Left,
    /// Z-type boundary at the right.
    Right,
}

/// The lattice family of a patch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Lattice {
    /// Rotated square lattice (Rigetti-style, paper Fig. 3a).
    Square,
    /// Heavy-hexagon lattice (IBM-style, paper Fig. 3d).
    HeavyHex,
}

/// One instruction of the QECali deformation instruction set (paper Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeformInstruction {
    /// Remove (isolate) a data qubit, merging the surrounding stabilizers
    /// into superstabilizers that exclude it (paper Fig. 4a).
    DataQRm {
        /// The data qubit to isolate.
        qubit: Coord,
    },
    /// Remove a square-lattice syndrome qubit: its stabilizer's data qubits
    /// are measured out and the neighbouring stabilizers reform around the
    /// hole (paper Fig. 4b).
    SyndromeQRm {
        /// The syndrome ancilla to isolate.
        ancilla: Coord,
    },
    /// Heavy-hex: remove a *horizontal* degree-2 bridge ancilla, splitting
    /// the stabilizer into two gauge halves (paper Fig. 8c).
    AncQRmHorDeg2 {
        /// The bridge ancilla to isolate.
        ancilla: Coord,
    },
    /// Heavy-hex: remove a *vertical* degree-2 bridge ancilla; one data qubit
    /// is pinned as a gauge qubit and leaves the code (paper Fig. 8d).
    AncQRmVerDeg2 {
        /// The bridge ancilla to isolate.
        ancilla: Coord,
    },
    /// Heavy-hex: remove a degree-3 (data-attached) bridge ancilla; the
    /// attached data qubit becomes a gauge qubit and leaves the code (paper
    /// Fig. 8e).
    AncQRmDeg3 {
        /// The bridge ancilla to isolate.
        ancilla: Coord,
    },
    /// Shrink the patch by one row/column at `side` (paper Fig. 4c).
    PatchQRm {
        /// The boundary to shrink.
        side: Side,
    },
    /// Expand the patch by one row/column at `side` (paper Fig. 4d).
    PatchQAd {
        /// The boundary to grow.
        side: Side,
    },
}

/// Failure while applying a deformation instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum DeformError {
    /// The coordinate is not a data qubit of the layout.
    UnknownQubit(Coord),
    /// The coordinate is not an ancilla of the layout.
    UnknownAncilla(Coord),
    /// The ancilla exists but has the wrong role for the instruction.
    WrongRole {
        /// The offending ancilla.
        ancilla: Coord,
        /// The role required by the instruction.
        expected: BridgeRole,
        /// The role found in the layout.
        found: BridgeRole,
    },
    /// A logical operator could not be routed away from the removed qubit
    /// (the deformation would destroy the encoded state).
    LogicalRerouteFailed {
        /// The qubit being isolated.
        qubit: Coord,
        /// The logical operator type that could not be rerouted.
        kind: StabKind,
    },
    /// The patch is too small to shrink further.
    PatchTooSmall,
    /// The instruction requires the other lattice family.
    WrongLattice {
        /// The lattice the instruction needs.
        required: Lattice,
    },
    /// The rewritten layout violates an invariant (the instruction sequence
    /// is not jointly applicable).
    InvalidResult(LayoutError),
    /// Two gauge parts (or a gauge part and a stabilizer/logical) anticommute
    /// after the rewrite.
    GaugeConflict,
}

impl fmt::Display for DeformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeformError::UnknownQubit(q) => write!(f, "no data qubit at {q}"),
            DeformError::UnknownAncilla(a) => write!(f, "no ancilla at {a}"),
            DeformError::WrongRole {
                ancilla,
                expected,
                found,
            } => write!(
                f,
                "ancilla {ancilla} has role {found:?}, instruction requires {expected:?}"
            ),
            DeformError::LogicalRerouteFailed { qubit, kind } => write!(
                f,
                "cannot route logical {kind:?} away from {qubit}; distance collapsed"
            ),
            DeformError::PatchTooSmall => write!(f, "patch too small to shrink"),
            DeformError::WrongLattice { required } => {
                write!(f, "instruction requires the {required:?} lattice")
            }
            DeformError::InvalidResult(e) => write!(f, "deformed layout invalid: {e}"),
            DeformError::GaugeConflict => write!(f, "gauge operators anticommute after rewrite"),
        }
    }
}

impl std::error::Error for DeformError {}

impl From<LayoutError> for DeformError {
    fn from(e: LayoutError) -> Self {
        DeformError::InvalidResult(e)
    }
}

// ---------------------------------------------------------------------------
// Layout-mutation primitives
// ---------------------------------------------------------------------------

/// Routes both logical operators away from `q` (before isolating it).
///
/// A logical of the same type as an announced basis measurement simply drops
/// the qubit (the measured value is folded into the Pauli frame); the
/// opposite-type logical is multiplied by a stabilizer containing `q`.
fn reroute_logicals(
    layout: &mut PatchLayout,
    q: Coord,
    measured: Option<StabKind>,
) -> Result<(), DeformError> {
    for kind in [StabKind::Z, StabKind::X] {
        let contains = match kind {
            StabKind::Z => layout.logical_z.contains(&q),
            StabKind::X => layout.logical_x.contains(&q),
        };
        if !contains {
            continue;
        }
        if measured == Some(kind) {
            match kind {
                StabKind::Z => layout.logical_z.remove(&q),
                StabKind::X => layout.logical_x.remove(&q),
            };
            continue;
        }
        let stab = layout
            .stabilizers_containing(q, kind)
            .first()
            .map(|&i| layout.stabilizers[i].support.clone());
        let Some(support) = stab else {
            return Err(DeformError::LogicalRerouteFailed { qubit: q, kind });
        };
        match kind {
            StabKind::Z => layout.logical_z = support_product(&layout.logical_z, &support),
            StabKind::X => layout.logical_x = support_product(&layout.logical_x, &support),
        }
    }
    Ok(())
}

/// Removes `q` from stabilizer `i`'s support and readout attachments.
fn drop_qubit_from_stab(layout: &mut PatchLayout, i: usize, q: Coord) {
    let s = &mut layout.stabilizers[i];
    s.support.remove(&q);
    if let Readout::Chain { parts } = &mut s.readout {
        for part in parts.iter_mut() {
            part.attach.retain(|&(_, d)| d != q);
        }
        parts.retain(|p| !p.attach.is_empty());
    }
}

/// Merges stabilizer `j` into stabilizer `i` (superstabilizer formation).
///
/// The merged support is the symmetric difference (the operator product);
/// the readout collapses to a direct coupling through one surviving ancilla
/// (physically: the gauge products are measured and multiplied classically —
/// see DESIGN.md).
fn merge_stabilizers(layout: &mut PatchLayout, i: usize, j: usize) {
    assert_ne!(i, j);
    let (lo, hi) = (i.min(j), i.max(j));
    let b = layout.stabilizers.remove(hi);
    let a = layout.stabilizers.remove(lo);
    debug_assert_eq!(a.kind, b.kind);
    let merged = Stabilizer {
        kind: a.kind,
        support: support_product(&a.support, &b.support),
        readout: Readout::Direct {
            ancilla: a.readout.measured_qubits()[0],
        },
        merged_from: a.merged_from + b.merged_from,
    };
    layout.stabilizers.push(merged);
}

/// Isolates data qubit `q` from the code.
///
/// `measured` announces a single-qubit basis measurement accompanying the
/// isolation: same-basis stabilizers simply drop the qubit; opposite-basis
/// ones merge into superstabilizers (or are absorbed into the boundary when
/// only one contains the qubit).
fn isolate_data_qubit(
    layout: &mut PatchLayout,
    q: Coord,
    measured: Option<StabKind>,
) -> Result<(), DeformError> {
    if !layout.data.contains(&q) {
        return Err(DeformError::UnknownQubit(q));
    }
    reroute_logicals(layout, q, measured)?;
    for kind in [StabKind::X, StabKind::Z] {
        let idxs = layout.stabilizers_containing(q, kind);
        if measured == Some(kind) {
            for &i in &idxs {
                drop_qubit_from_stab(layout, i, q);
            }
        } else {
            match idxs[..] {
                [] => {}
                [only] => {
                    layout.stabilizers.remove(only);
                }
                [a, b] => merge_stabilizers(layout, a, b),
                _ => unreachable!("validation bounds same-type membership at 2"),
            }
        }
    }
    layout.stabilizers.retain(|s| !s.support.is_empty());
    layout.data.remove(&q);
    layout.boundary.left.remove(&q);
    layout.boundary.right.remove(&q);
    layout.boundary.top.remove(&q);
    layout.boundary.bottom.remove(&q);
    Ok(())
}

/// Checks gauge-level commutation: every chain gauge part must overlap evenly
/// with every opposite-type stabilizer, opposite-type gauge part, and the
/// opposite logical operator.
pub fn check_gauge_commutation(layout: &PatchLayout) -> Result<(), DeformError> {
    let parts: Vec<(StabKind, BTreeSet<Coord>)> = layout
        .stabilizers
        .iter()
        .filter_map(|s| match &s.readout {
            Readout::Chain { parts } if parts.len() > 1 => Some(
                parts
                    .iter()
                    .map(move |p| (s.kind, p.gauge_support()))
                    .collect::<Vec<_>>(),
            ),
            _ => None,
        })
        .flatten()
        .collect();
    for (kind, gauge) in &parts {
        for s in &layout.stabilizers {
            if s.kind != *kind && s.support.intersection(gauge).count() % 2 == 1 {
                return Err(DeformError::GaugeConflict);
            }
        }
        for (okind, other) in &parts {
            if okind != kind && other.intersection(gauge).count() % 2 == 1 {
                return Err(DeformError::GaugeConflict);
            }
        }
        let logical = match kind {
            StabKind::X => &layout.logical_z,
            StabKind::Z => &layout.logical_x,
        };
        if logical.intersection(gauge).count() % 2 == 1 {
            return Err(DeformError::GaugeConflict);
        }
    }
    Ok(())
}

/// Removes a bridge ancilla (heavy-hex), splitting its stabilizer's chain
/// into gauge parts, pinning singleton-attached data qubits out of the code,
/// and merging whatever opposite-type stabilizers the surviving gauges
/// require.
fn remove_bridge_ancilla(
    layout: &mut PatchLayout,
    ancilla: Coord,
    expected: BridgeRole,
) -> Result<(), DeformError> {
    // Locate the stabilizer and chain position.
    let mut found: Option<(usize, usize, usize)> = None;
    'outer: for (si, s) in layout.stabilizers.iter().enumerate() {
        if let Readout::Chain { parts } = &s.readout {
            for (pi, part) in parts.iter().enumerate() {
                if let Some(ci) = part.chain.iter().position(|&a| a == ancilla) {
                    found = Some((si, pi, ci));
                    break 'outer;
                }
            }
        }
    }
    let Some((si, pi, ci)) = found else {
        return Err(DeformError::UnknownAncilla(ancilla));
    };
    let role = bridge_role(&layout.stabilizers[si], ancilla).expect("role of located ancilla");
    if role != expected {
        return Err(DeformError::WrongRole {
            ancilla,
            expected,
            found: role,
        });
    }

    // Split the chain part at the removed ancilla.
    let stab_kind = layout.stabilizers[si].kind;
    let part = match &mut layout.stabilizers[si].readout {
        Readout::Chain { parts } => parts.remove(pi),
        Readout::Direct { .. } => unreachable!("located within a chain"),
    };
    let mut pinned: Vec<Coord> = Vec::new();
    let mut kept: Vec<ChainPart> = Vec::new();
    // A removed attachment node orphans its data qubit (AncQ_RM_Deg3): the
    // qubit becomes a gauge qubit and leaves the code (paper Fig. 8e).
    if let Some(&(_, d)) = part.attach.iter().find(|&&(k, _)| k == ci) {
        pinned.push(d);
    }
    let pieces = [
        ChainPart {
            chain: part.chain[..ci].to_vec(),
            attach: part
                .attach
                .iter()
                .filter(|&&(k, _)| k < ci)
                .copied()
                .collect(),
        },
        ChainPart {
            chain: part.chain[ci + 1..].to_vec(),
            attach: part
                .attach
                .iter()
                .filter(|&&(k, _)| k > ci)
                .map(|&(k, d)| (k - ci - 1, d))
                .collect(),
        },
    ];
    for piece in pieces {
        if piece.chain.is_empty() || piece.attach.is_empty() {
            continue; // dangling ancillas are simply freed
        }
        if piece.attach.len() == 1 {
            pinned.push(piece.attach[0].1);
        } else {
            kept.push(piece);
        }
    }
    match &mut layout.stabilizers[si].readout {
        Readout::Chain { parts } => parts.extend(kept),
        Readout::Direct { .. } => unreachable!(),
    }
    let survives = match &layout.stabilizers[si].readout {
        Readout::Chain { parts } => !parts.is_empty(),
        Readout::Direct { .. } => true,
    };
    if !survives {
        layout.stabilizers.remove(si);
    }

    // Pinned qubits leave the code, measured in the split stabilizer's basis
    // (the singleton gauge is a single-qubit measurement in that basis).
    for q in pinned {
        isolate_data_qubit(layout, q, Some(stab_kind))?;
    }

    // Repair gauge commutation: merge opposite-type stabilizers that overlap
    // a surviving gauge part oddly, grouped by their parity pattern.
    repair_gauge_commutation(layout)?;
    check_gauge_commutation(layout)?;
    layout.validate()?;
    Ok(())
}

/// Merges (or absorbs) opposite-type stabilizers whose overlap with some
/// gauge part is odd, pairing stabilizers with identical parity patterns.
fn repair_gauge_commutation(layout: &mut PatchLayout) -> Result<(), DeformError> {
    loop {
        // Gather gauge parts.
        let parts: Vec<(StabKind, BTreeSet<Coord>)> = layout
            .stabilizers
            .iter()
            .filter_map(|s| match &s.readout {
                Readout::Chain { parts } if parts.len() > 1 => Some(
                    parts
                        .iter()
                        .map(move |p| (s.kind, p.gauge_support()))
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .flatten()
            .collect();
        if parts.is_empty() {
            return Ok(());
        }
        // Parity pattern of every stabilizer against opposite-type parts.
        let mut patterns: Vec<(usize, Vec<bool>)> = Vec::new();
        for (i, s) in layout.stabilizers.iter().enumerate() {
            let pat: Vec<bool> = parts
                .iter()
                .map(|(kind, gauge)| {
                    s.kind != *kind && s.support.intersection(gauge).count() % 2 == 1
                })
                .collect();
            if pat.iter().any(|&b| b) {
                patterns.push((i, pat));
            }
        }
        // A logical operator anticommuting with a gauge part must be rerouted
        // by multiplying it with a same-type stabilizer carrying the same
        // parity pattern (gauge fixing moves the logical representative off
        // the measured gauge).
        for logical_kind in [StabKind::Z, StabKind::X] {
            let logical = match logical_kind {
                StabKind::Z => layout.logical_z.clone(),
                StabKind::X => layout.logical_x.clone(),
            };
            let pat: Vec<bool> = parts
                .iter()
                .map(|(kind, gauge)| {
                    *kind != logical_kind && logical.intersection(gauge).count() % 2 == 1
                })
                .collect();
            if !pat.iter().any(|&b| b) {
                continue;
            }
            let Some((fix_idx, _)) = patterns
                .iter()
                .find(|(i, p)| layout.stabilizers[*i].kind == logical_kind && *p == pat)
            else {
                return Err(DeformError::GaugeConflict);
            };
            let support = layout.stabilizers[*fix_idx].support.clone();
            match logical_kind {
                StabKind::Z => layout.logical_z = support_product(&layout.logical_z, &support),
                StabKind::X => layout.logical_x = support_product(&layout.logical_x, &support),
            }
            // Patterns of stabilizers are unchanged by the logical reroute;
            // restart the loop so the logical parities are recomputed.
            continue;
        }
        if patterns.is_empty() {
            return Ok(());
        }
        // Find two stabilizers of the same kind with identical patterns.
        let mut acted = false;
        'search: for a in 0..patterns.len() {
            for b in (a + 1)..patterns.len() {
                let (ia, pa) = &patterns[a];
                let (ib, pb) = &patterns[b];
                if pa == pb && layout.stabilizers[*ia].kind == layout.stabilizers[*ib].kind {
                    merge_stabilizers(layout, *ia, *ib);
                    acted = true;
                    break 'search;
                }
            }
        }
        if !acted {
            // No pairable partner: absorb the first conflicting stabilizer
            // into the boundary (remove it).
            let (i, _) = patterns[0];
            layout.stabilizers.remove(i);
        }
    }
}

// ---------------------------------------------------------------------------
// The journaled patch
// ---------------------------------------------------------------------------

/// A surface-code patch under deformation: a pristine `rows × cols` base plus
/// a journal of interior instructions.
///
/// `PatchQAd` / `PatchQRm` resize the base (replaying the journal on the new
/// pristine patch); all other instructions append to the journal.
///
/// # Examples
///
/// ```
/// use caliqec_code::{DeformInstruction, DeformedPatch, Lattice};
/// use caliqec_code::Coord;
///
/// let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
/// let d0 = patch.layout().unwrap().data.iter().copied().nth(12).unwrap();
/// patch.apply(DeformInstruction::DataQRm { qubit: d0 }).unwrap();
/// let layout = patch.layout().unwrap();
/// assert_eq!(layout.data.len(), 24);
/// assert!(layout.num_superstabilizers() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct DeformedPatch {
    lattice: Lattice,
    rows: usize,
    cols: usize,
    journal: Vec<DeformInstruction>,
}

impl DeformedPatch {
    /// Creates an undeformed `rows × cols` patch of the given lattice.
    pub fn new(lattice: Lattice, rows: usize, cols: usize) -> DeformedPatch {
        DeformedPatch {
            lattice,
            rows,
            cols,
            journal: Vec::new(),
        }
    }

    /// Current number of data-qubit rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Current number of data-qubit columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The lattice family.
    pub fn lattice(&self) -> Lattice {
        self.lattice
    }

    /// The journaled interior instructions.
    pub fn journal(&self) -> &[DeformInstruction] {
        &self.journal
    }

    /// Generates the pristine base layout (no journal applied).
    pub fn pristine(&self) -> PatchLayout {
        match self.lattice {
            Lattice::Square => rotated_patch(self.rows, self.cols),
            Lattice::HeavyHex => heavy_hex_patch(self.rows, self.cols),
        }
    }

    /// Realizes the current deformed layout (pristine base + journal).
    ///
    /// # Errors
    ///
    /// Fails when the journal is no longer applicable (e.g. after shrinking
    /// the patch onto a removed qubit).
    pub fn layout(&self) -> Result<PatchLayout, DeformError> {
        let mut layout = self.pristine();
        for instr in &self.journal {
            apply_interior(&mut layout, self.lattice, *instr)?;
        }
        layout.validate()?;
        check_gauge_commutation(&layout)?;
        Ok(layout)
    }

    /// Applies one instruction, returning the resulting layout.
    ///
    /// # Errors
    ///
    /// On failure the patch is left unchanged.
    pub fn apply(&mut self, instr: DeformInstruction) -> Result<PatchLayout, DeformError> {
        let mut next = self.clone();
        match instr {
            DeformInstruction::PatchQAd { side } => {
                match side {
                    Side::Bottom => next.rows += 1,
                    Side::Right => next.cols += 1,
                    Side::Top => {
                        next.rows += 1;
                        next.shift_journal(PITCH, 0);
                    }
                    Side::Left => {
                        next.cols += 1;
                        next.shift_journal(0, PITCH);
                    }
                };
            }
            DeformInstruction::PatchQRm { side } => {
                if (matches!(side, Side::Top | Side::Bottom) && next.rows <= 2)
                    || (matches!(side, Side::Left | Side::Right) && next.cols <= 2)
                {
                    return Err(DeformError::PatchTooSmall);
                }
                match side {
                    Side::Bottom => next.rows -= 1,
                    Side::Right => next.cols -= 1,
                    Side::Top => {
                        next.rows -= 1;
                        next.shift_journal(-PITCH, 0);
                    }
                    Side::Left => {
                        next.cols -= 1;
                        next.shift_journal(0, -PITCH);
                    }
                }
            }
            other => next.journal.push(other),
        }
        let layout = next.layout()?;
        *self = next;
        Ok(layout)
    }

    /// Reverses the most recent interior instruction (qubit reintegration).
    ///
    /// Reintegration resets the isolated qubits and re-measures the original
    /// stabilizers (paper Sec. 2.2); at the layout level this is exactly
    /// dropping the journal entry.
    ///
    /// Returns the reintegrated instruction, or `None` when the journal is
    /// empty.
    pub fn reintegrate_last(&mut self) -> Option<DeformInstruction> {
        self.journal.pop()
    }

    /// Removes every journaled instruction (full reintegration).
    pub fn reintegrate_all(&mut self) {
        self.journal.clear();
    }

    fn shift_journal(&mut self, dr: i32, dc: i32) {
        for instr in &mut self.journal {
            match instr {
                DeformInstruction::DataQRm { qubit } => {
                    qubit.r += dr;
                    qubit.c += dc;
                }
                DeformInstruction::SyndromeQRm { ancilla }
                | DeformInstruction::AncQRmHorDeg2 { ancilla }
                | DeformInstruction::AncQRmVerDeg2 { ancilla }
                | DeformInstruction::AncQRmDeg3 { ancilla } => {
                    ancilla.r += dr;
                    ancilla.c += dc;
                }
                DeformInstruction::PatchQAd { .. } | DeformInstruction::PatchQRm { .. } => {}
            }
        }
    }
}

/// Applies an interior (non-resizing) instruction to a layout.
pub fn apply_interior(
    layout: &mut PatchLayout,
    lattice: Lattice,
    instr: DeformInstruction,
) -> Result<(), DeformError> {
    match instr {
        DeformInstruction::DataQRm { qubit } => {
            isolate_data_qubit(layout, qubit, None)?;
            layout.validate()?;
            check_gauge_commutation(layout)?;
            Ok(())
        }
        DeformInstruction::SyndromeQRm { ancilla } => {
            if lattice != Lattice::Square {
                return Err(DeformError::WrongLattice {
                    required: Lattice::Square,
                });
            }
            let Some(si) = layout.stabilizers.iter().position(
                |s| matches!(&s.readout, Readout::Direct { ancilla: a } if *a == ancilla),
            ) else {
                return Err(DeformError::UnknownAncilla(ancilla));
            };
            let s = layout.stabilizers.remove(si);
            for q in s.support {
                isolate_data_qubit(layout, q, Some(s.kind))?;
            }
            layout.validate()?;
            Ok(())
        }
        DeformInstruction::AncQRmHorDeg2 { ancilla } => {
            require_heavy_hex(lattice)?;
            remove_bridge_ancilla(layout, ancilla, BridgeRole::MidBridge)
        }
        DeformInstruction::AncQRmVerDeg2 { ancilla } => {
            require_heavy_hex(lattice)?;
            remove_bridge_ancilla(layout, ancilla, BridgeRole::OuterBridge)
        }
        DeformInstruction::AncQRmDeg3 { ancilla } => {
            require_heavy_hex(lattice)?;
            remove_bridge_ancilla(layout, ancilla, BridgeRole::Attach)
        }
        DeformInstruction::PatchQAd { .. } | DeformInstruction::PatchQRm { .. } => {
            unreachable!("resizing instructions are handled by DeformedPatch::apply")
        }
    }
}

fn require_heavy_hex(lattice: Lattice) -> Result<(), DeformError> {
    if lattice != Lattice::HeavyHex {
        return Err(DeformError::WrongLattice {
            required: Lattice::HeavyHex,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::square::data_coord;

    #[test]
    fn data_q_rm_merges_stabilizers() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        let q = data_coord(2, 2); // interior qubit
        let before = patch.layout().unwrap();
        let nx = before.stabilizers_containing(q, StabKind::X).len();
        let nz = before.stabilizers_containing(q, StabKind::Z).len();
        assert_eq!((nx, nz), (2, 2));
        let after = patch
            .apply(DeformInstruction::DataQRm { qubit: q })
            .unwrap();
        assert_eq!(after.data.len(), 24);
        assert_eq!(after.num_superstabilizers(), 2);
        assert_eq!(after.stabilizers.len(), before.stabilizers.len() - 2);
    }

    #[test]
    fn data_q_rm_near_logical_reroutes() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        let q = data_coord(0, 2); // on the logical-Z chain (top row)
        let layout = patch
            .apply(DeformInstruction::DataQRm { qubit: q })
            .unwrap();
        assert!(!layout.logical_z.contains(&q));
        layout.validate().unwrap();
    }

    #[test]
    fn data_q_rm_unknown_qubit_fails_cleanly() {
        let mut patch = DeformedPatch::new(Lattice::Square, 3, 3);
        let err = patch
            .apply(DeformInstruction::DataQRm {
                qubit: Coord::new(999, 999),
            })
            .unwrap_err();
        assert!(matches!(err, DeformError::UnknownQubit(_)));
        assert!(patch.journal().is_empty());
    }

    #[test]
    fn syndrome_q_rm_carves_hole() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        // Find an interior stabilizer's ancilla.
        let layout = patch.layout().unwrap();
        let stab = layout
            .stabilizers
            .iter()
            .find(|s| s.weight() == 4 && s.kind == StabKind::Z)
            .expect("interior Z stabilizer");
        let anc = stab.readout.measured_qubits()[0];
        let n_data_before = layout.data.len();
        let after = patch
            .apply(DeformInstruction::SyndromeQRm { ancilla: anc })
            .unwrap();
        assert_eq!(after.data.len(), n_data_before - 4);
        after.validate().unwrap();
    }

    #[test]
    fn syndrome_q_rm_requires_square() {
        let mut patch = DeformedPatch::new(Lattice::HeavyHex, 3, 3);
        let err = patch
            .apply(DeformInstruction::SyndromeQRm {
                ancilla: Coord::new(2, 2),
            })
            .unwrap_err();
        assert!(matches!(err, DeformError::WrongLattice { .. }));
    }

    #[test]
    fn patch_ad_then_rm_roundtrips() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        patch
            .apply(DeformInstruction::PatchQAd { side: Side::Bottom })
            .unwrap();
        assert_eq!(patch.rows(), 6);
        patch
            .apply(DeformInstruction::PatchQRm { side: Side::Bottom })
            .unwrap();
        assert_eq!(patch.rows(), 5);
        assert_eq!(patch.layout().unwrap(), rotated_patch(5, 5));
    }

    #[test]
    fn patch_rm_too_small() {
        let mut patch = DeformedPatch::new(Lattice::Square, 3, 3);
        patch
            .apply(DeformInstruction::PatchQRm { side: Side::Right })
            .unwrap();
        let err = patch
            .apply(DeformInstruction::PatchQRm { side: Side::Right })
            .unwrap_err();
        assert_eq!(err, DeformError::PatchTooSmall);
    }

    #[test]
    fn top_growth_shifts_journal() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        let q = data_coord(2, 2);
        patch
            .apply(DeformInstruction::DataQRm { qubit: q })
            .unwrap();
        patch
            .apply(DeformInstruction::PatchQAd { side: Side::Top })
            .unwrap();
        // The hole keeps its identity relative to the old patch content.
        let layout = patch.layout().unwrap();
        assert_eq!(layout.data.len(), 6 * 5 - 1);
        assert!(!layout.data.contains(&Coord::new(q.r + PITCH, q.c)));
    }

    #[test]
    fn reintegration_restores_pristine() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(2, 2),
            })
            .unwrap();
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(4, 4),
            })
            .unwrap();
        assert_eq!(
            patch.reintegrate_last(),
            Some(DeformInstruction::DataQRm {
                qubit: data_coord(4, 4),
            })
        );
        patch.reintegrate_all();
        assert_eq!(patch.layout().unwrap(), rotated_patch(5, 5));
    }

    #[test]
    fn heavy_hex_mid_bridge_split() {
        let mut patch = DeformedPatch::new(Lattice::HeavyHex, 5, 5);
        let layout = patch.layout().unwrap();
        // Pick an interior X stabilizer's vertical (middle) bridge ancilla.
        let stab = layout
            .stabilizers
            .iter()
            .find(|s| s.weight() == 4 && s.kind == StabKind::X)
            .expect("interior X stabilizer");
        let Readout::Chain { parts } = &stab.readout else {
            panic!()
        };
        let mid = parts[0].chain[3];
        let after = patch
            .apply(DeformInstruction::AncQRmHorDeg2 { ancilla: mid })
            .unwrap();
        // The stabilizer survives split into two gauge parts.
        let split = after
            .stabilizers
            .iter()
            .find(|s| matches!(&s.readout, Readout::Chain { parts } if parts.len() == 2));
        assert!(split.is_some(), "split stabilizer survives");
        after.validate().unwrap();
        check_gauge_commutation(&after).unwrap();
    }

    #[test]
    fn heavy_hex_mid_bridge_wrong_role_rejected() {
        let mut patch = DeformedPatch::new(Lattice::HeavyHex, 5, 5);
        let layout = patch.layout().unwrap();
        let stab = layout.stabilizers.iter().find(|s| s.weight() == 4).unwrap();
        let Readout::Chain { parts } = &stab.readout else {
            panic!()
        };
        let attach_node = parts[0].chain[0];
        let err = patch
            .apply(DeformInstruction::AncQRmHorDeg2 {
                ancilla: attach_node,
            })
            .unwrap_err();
        assert!(matches!(err, DeformError::WrongRole { .. }));
    }

    #[test]
    fn heavy_hex_deg3_pins_data_qubit() {
        let mut patch = DeformedPatch::new(Lattice::HeavyHex, 5, 5);
        let layout = patch.layout().unwrap();
        let stab = layout
            .stabilizers
            .iter()
            .find(|s| s.weight() == 4 && s.kind == StabKind::Z)
            .unwrap();
        let Readout::Chain { parts } = &stab.readout else {
            panic!()
        };
        // Remove the chain-end attachment (p0): its data qubit is pinned.
        let (k, pinned_data) = parts[0].attach[0];
        let node = parts[0].chain[k];
        let before_data = layout.data.len();
        let after = patch
            .apply(DeformInstruction::AncQRmDeg3 { ancilla: node })
            .unwrap();
        assert_eq!(after.data.len(), before_data - 1);
        assert!(!after.data.contains(&pinned_data));
        after.validate().unwrap();
    }
}
