//! Memory-experiment circuit generation for (possibly deformed) patches.
//!
//! Turns a [`PatchLayout`] into a noisy Clifford circuit: repeated rounds of
//! stabilizer extraction with circuit-level noise, detector annotations
//! comparing consecutive rounds (per gauge part), and a final transversal
//! data measurement carrying the logical observable.
//!
//! Noise follows the paper's standard circuit-level model (Sec. 7.2):
//! depolarizing errors after one- and two-qubit gates, flip errors on
//! measurement and reset, and a per-round idle depolarization on data qubits.
//! Per-qubit and per-pair overrides express *drifted* gates for the
//! calibration experiments (Figs. 10 and 13).

use crate::layout::{Coord, PatchLayout, Readout, StabKind};
use caliqec_stab::{
    Basis, Circuit, DetectorErrorModel, ErrorSource, MeasIdx, Noise1, Noise2, Qubit, RateTable,
};
use std::collections::{BTreeMap, HashMap};

/// Circuit-level noise parameters with per-site drift overrides.
#[derive(Clone, Debug, Default)]
pub struct NoiseModel {
    /// Depolarizing probability after each one-qubit gate.
    pub p1: f64,
    /// Two-qubit depolarizing probability after each two-qubit gate.
    pub p2: f64,
    /// Classical flip probability on each measurement.
    pub p_meas: f64,
    /// Pauli flip probability after each reset.
    pub p_reset: f64,
    /// Per-round depolarizing probability on idle data qubits.
    pub p_idle: f64,
    /// Absolute overrides of the one-qubit gate error on specific qubits
    /// (drifted single-qubit gates).
    pub qubit_override: HashMap<Coord, f64>,
    /// Absolute overrides of the two-qubit gate error on specific couplers
    /// (drifted two-qubit gates); keys are normalized with
    /// [`NoiseModel::pair_key`].
    pub pair_override: HashMap<(Coord, Coord), f64>,
}

impl NoiseModel {
    /// Uniform circuit-level noise at rate `p` on every channel.
    pub fn uniform(p: f64) -> NoiseModel {
        NoiseModel {
            p1: p,
            p2: p,
            p_meas: p,
            p_reset: p,
            p_idle: p,
            ..NoiseModel::default()
        }
    }

    /// Noiseless model.
    pub fn ideal() -> NoiseModel {
        NoiseModel::default()
    }

    /// Normalized (ordered) key for a coupler.
    pub fn pair_key(a: Coord, b: Coord) -> (Coord, Coord) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Marks the one-qubit gate on `q` as drifted to error rate `p`.
    pub fn drift_qubit(&mut self, q: Coord, p: f64) -> &mut Self {
        self.qubit_override.insert(q, p);
        self
    }

    /// Marks the two-qubit gate on `(a, b)` as drifted to error rate `p`.
    pub fn drift_pair(&mut self, a: Coord, b: Coord, p: f64) -> &mut Self {
        self.pair_override.insert(Self::pair_key(a, b), p);
        self
    }

    /// Effective one-qubit gate error on `q`.
    pub fn p1_at(&self, q: Coord) -> f64 {
        self.qubit_override.get(&q).copied().unwrap_or(self.p1)
    }

    /// Effective idle depolarization on `q` per round (drifted qubits idle
    /// worse too).
    pub fn idle_at(&self, q: Coord) -> f64 {
        self.qubit_override.get(&q).copied().unwrap_or(self.p_idle)
    }

    /// Effective two-qubit gate error on the coupler `(a, b)`.
    pub fn p2_at(&self, a: Coord, b: Coord) -> f64 {
        self.pair_override
            .get(&Self::pair_key(a, b))
            .copied()
            .unwrap_or(self.p2)
    }
}

/// Which logical memory is being protected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemoryBasis {
    /// Protect `|0⟩`: Z-stabilizer detectors from round 0, logical Z readout.
    Z,
    /// Protect `|+⟩`: X-stabilizer detectors from round 0, logical X readout.
    X,
}

/// A generated memory experiment.
#[derive(Clone, Debug)]
pub struct MemoryCircuit {
    /// The noisy circuit with detectors and one logical observable.
    pub circuit: Circuit,
    /// Coordinate → circuit qubit index.
    pub qubit_at: BTreeMap<Coord, Qubit>,
    /// Number of stabilizer-extraction rounds.
    pub rounds: usize,
}

struct Builder<'a> {
    circuit: Circuit,
    noise: &'a NoiseModel,
    qubit_at: BTreeMap<Coord, Qubit>,
}

impl Builder<'_> {
    fn q(&self, c: Coord) -> Qubit {
        self.qubit_at[&c]
    }

    /// Reset into a basis, with reset noise (and H noise for the X basis).
    fn reset_in(&mut self, c: Coord, basis: Basis) {
        let q = self.q(c);
        self.circuit.reset(Basis::Z, &[q]);
        self.circuit
            .noise1(Noise1::XError, self.noise.p_reset, &[q]);
        if basis == Basis::X {
            self.circuit.h(q);
            self.circuit
                .noise1(Noise1::Depolarize1, self.noise.p1_at(c), &[q]);
        }
    }

    /// Measure in a basis (H expansion creates a 1q-gate noise site for the
    /// X basis), with classical flip noise.
    fn measure_in(&mut self, c: Coord, basis: Basis) -> MeasIdx {
        let q = self.q(c);
        if basis == Basis::X {
            self.circuit.h(q);
            self.circuit
                .noise1(Noise1::Depolarize1, self.noise.p1_at(c), &[q]);
        }
        self.circuit.measure(q, Basis::Z, self.noise.p_meas)
    }

    fn cx(&mut self, control: Coord, target: Coord) {
        let (c, t) = (self.q(control), self.q(target));
        self.circuit.cx(c, t);
        self.circuit.noise2(
            Noise2::Depolarize2,
            self.noise.p2_at(control, target),
            &[(c, t)],
        );
    }

    fn swap(&mut self, a: Coord, b: Coord) {
        let (qa, qb) = (self.q(a), self.q(b));
        self.circuit.g2(caliqec_stab::Gate2::Swap, qa, qb);
        self.circuit
            .noise2(Noise2::Depolarize2, self.noise.p2_at(a, b), &[(qa, qb)]);
    }

    /// Measures a direct-readout stabilizer over `support`.
    fn measure_direct(&mut self, kind: StabKind, ancilla: Coord, support: &[Coord]) -> MeasIdx {
        match kind {
            StabKind::Z => {
                self.reset_in(ancilla, Basis::Z);
                for &d in support {
                    self.cx(d, ancilla);
                }
                self.measure_in(ancilla, Basis::Z)
            }
            StabKind::X => {
                // CX conjugates the collector's X onto the data, so the final
                // X-basis readout measures the X-parity of the support.
                self.reset_in(ancilla, Basis::X);
                for &d in support {
                    self.cx(ancilla, d);
                }
                self.measure_in(ancilla, Basis::X)
            }
        }
    }

    /// Measures one gauge part of a chain-readout stabilizer: the parity
    /// collector is SWAP-relayed along the bridge, interacting with each
    /// attached data qubit in order, and is measured at the chain end.
    fn measure_chain_part(
        &mut self,
        kind: StabKind,
        chain: &[Coord],
        attach: &[(usize, Coord)],
    ) -> MeasIdx {
        let basis = match kind {
            StabKind::Z => Basis::Z,
            StabKind::X => Basis::X,
        };
        for &a in chain {
            self.reset_in(a, if a == chain[0] { basis } else { Basis::Z });
        }
        let mut pos = 0usize;
        for &(k, d) in attach {
            while pos < k {
                self.swap(chain[pos], chain[pos + 1]);
                pos += 1;
            }
            match kind {
                StabKind::Z => self.cx(d, chain[pos]),
                StabKind::X => self.cx(chain[pos], d),
            }
        }
        while pos + 1 < chain.len() {
            self.swap(chain[pos], chain[pos + 1]);
            pos += 1;
        }
        self.measure_in(chain[pos], basis)
    }
}

/// Generates a `rounds`-round memory experiment for `layout`.
///
/// Detectors compare each stabilizer gauge part with its previous-round
/// value; same-basis stabilizers additionally anchor to the initial state
/// (round 0) and to the final transversal readout. Observable 0 is the
/// logical operator of the protected basis.
///
/// # Panics
///
/// Panics if `rounds == 0` or the layout has no data qubits.
///
/// # Examples
///
/// ```
/// use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
/// use caliqec_stab::check_deterministic_detectors;
/// use rand::SeedableRng;
///
/// let mem = memory_circuit(
///     &rotated_patch(3, 3),
///     &NoiseModel::uniform(0.001),
///     3,
///     MemoryBasis::Z,
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// check_deterministic_detectors(&mem.circuit, 4, &mut rng).unwrap();
/// ```
pub fn memory_circuit(
    layout: &PatchLayout,
    noise: &NoiseModel,
    rounds: usize,
    basis: MemoryBasis,
) -> MemoryCircuit {
    assert!(rounds > 0, "memory experiment needs at least one round");
    assert!(!layout.data.is_empty(), "layout has no data qubits");
    // Qubit index assignment: data first, then ancillas.
    let mut qubit_at: BTreeMap<Coord, Qubit> = BTreeMap::new();
    for &d in &layout.data {
        let n = qubit_at.len() as Qubit;
        qubit_at.insert(d, n);
    }
    for a in layout.ancillas() {
        let n = qubit_at.len() as Qubit;
        qubit_at.entry(a).or_insert(n);
    }
    let mut b = Builder {
        circuit: Circuit::new(qubit_at.len()),
        noise,
        qubit_at,
    };

    let init_basis = match basis {
        MemoryBasis::Z => Basis::Z,
        MemoryBasis::X => Basis::X,
    };
    let anchored_kind = match basis {
        MemoryBasis::Z => StabKind::Z,
        MemoryBasis::X => StabKind::X,
    };
    let data: Vec<Coord> = layout.data.iter().copied().collect();
    for &d in &data {
        b.reset_in(d, init_basis);
    }

    // prev[s] = measurement records of stabilizer s's parts, previous round.
    let mut prev: Vec<Vec<MeasIdx>> = vec![Vec::new(); layout.stabilizers.len()];
    for round in 0..rounds {
        // Idle depolarization on data qubits (per-qubit drift overrides).
        for &d in &data {
            let p = noise.idle_at(d);
            let q = b.q(d);
            b.circuit.noise1(Noise1::Depolarize1, p, &[q]);
        }
        for (si, stab) in layout.stabilizers.iter().enumerate() {
            let meas: Vec<MeasIdx> = match &stab.readout {
                Readout::Direct { ancilla } => {
                    let support: Vec<Coord> = stab.support.iter().copied().collect();
                    vec![b.measure_direct(stab.kind, *ancilla, &support)]
                }
                Readout::Chain { parts } => parts
                    .iter()
                    .map(|p| b.measure_chain_part(stab.kind, &p.chain, &p.attach))
                    .collect(),
            };
            if round == 0 {
                if stab.kind == anchored_kind {
                    // Anchored to the initial product state: each gauge part
                    // is individually deterministic.
                    for &m in &meas {
                        b.circuit.detector(&[m]);
                    }
                }
            } else {
                for (m, pm) in meas.iter().zip(&prev[si]) {
                    b.circuit.detector(&[*m, *pm]);
                }
            }
            prev[si] = meas;
        }
    }

    // Final transversal readout.
    let mut final_meas: BTreeMap<Coord, MeasIdx> = BTreeMap::new();
    for &d in &data {
        let m = b.measure_in(d, init_basis);
        final_meas.insert(d, m);
    }
    // Anchor same-basis stabilizers to the data readout.
    for (si, stab) in layout.stabilizers.iter().enumerate() {
        if stab.kind != anchored_kind {
            continue;
        }
        let mut records: Vec<MeasIdx> = stab.support.iter().map(|d| final_meas[d]).collect();
        records.extend(prev[si].iter().copied());
        b.circuit.detector(&records);
    }
    // Logical observable.
    let logical = match basis {
        MemoryBasis::Z => &layout.logical_z,
        MemoryBasis::X => &layout.logical_x,
    };
    let obs: Vec<MeasIdx> = logical.iter().map(|d| final_meas[d]).collect();
    b.circuit.observable(0, &obs);

    MemoryCircuit {
        circuit: b.circuit,
        qubit_at: b.qubit_at,
        rounds,
    }
}

/// Builds a [`RateTable`] assigning every error source of `dem` (a model
/// extracted from `mem`'s circuit) the effective rate `noise` prescribes
/// for its gate, keyed back to lattice coordinates via `mem.qubit_at`.
///
/// This is the recalibration seam: extract the DEM (and matching graph)
/// once from a *baseline* noise model, then feed tables built from drifted
/// models into `MatchingGraph::reweight` — no circuit regeneration or DEM
/// re-extraction. Source kinds map exactly as [`memory_circuit`] emits
/// them: `XError` sites are reset flips (`p_reset`), `Depolarize1` sites
/// take the per-qubit one-qubit rate ([`NoiseModel::p1_at`]),
/// `Depolarize2` sites the per-coupler rate ([`NoiseModel::p2_at`]), and
/// measurement flips `p_meas`. One caveat: gate-attached and idling
/// `Depolarize1` noise on the same qubit share one source (gate identity,
/// not program location), so both take `p1_at` — exact whenever `p1 ==
/// p_idle` or the qubit carries an override, which covers the uniform and
/// drift-override models used in the calibration experiments.
pub fn drift_rate_table(
    mem: &MemoryCircuit,
    dem: &DetectorErrorModel,
    noise: &NoiseModel,
) -> RateTable {
    let coord_of: HashMap<Qubit, Coord> = mem.qubit_at.iter().map(|(&c, &q)| (q, c)).collect();
    let mut rates = RateTable::identity();
    for &source in &dem.sources {
        let p = match source {
            ErrorSource::Noise1(Noise1::XError, _) => noise.p_reset,
            ErrorSource::Noise1(_, q) => coord_of.get(&q).map_or(noise.p1, |&c| noise.p1_at(c)),
            ErrorSource::Noise2(_, a, b) => match (coord_of.get(&a), coord_of.get(&b)) {
                (Some(&ca), Some(&cb)) => noise.p2_at(ca, cb),
                _ => noise.p2,
            },
            ErrorSource::MeasureFlip(_) => noise.p_meas,
        };
        rates.set(source, p);
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deform::{DeformInstruction, DeformedPatch, Lattice};
    use crate::heavyhex::heavy_hex_patch;
    use crate::square::{data_coord, rotated_patch};
    use caliqec_stab::check_deterministic_detectors;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_deterministic(circuit: &Circuit) {
        let mut rng = StdRng::seed_from_u64(11);
        check_deterministic_detectors(circuit, 4, &mut rng)
            .unwrap_or_else(|e| panic!("nondeterministic circuit: {e}"));
    }

    #[test]
    fn square_memory_z_is_deterministic() {
        let mem = memory_circuit(
            &rotated_patch(3, 3),
            &NoiseModel::ideal(),
            3,
            MemoryBasis::Z,
        );
        assert_deterministic(&mem.circuit);
    }

    #[test]
    fn square_memory_x_is_deterministic() {
        let mem = memory_circuit(
            &rotated_patch(3, 3),
            &NoiseModel::ideal(),
            3,
            MemoryBasis::X,
        );
        assert_deterministic(&mem.circuit);
    }

    #[test]
    fn heavy_hex_memory_both_bases_deterministic() {
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            let mem = memory_circuit(&heavy_hex_patch(3, 3), &NoiseModel::ideal(), 2, basis);
            assert_deterministic(&mem.circuit);
        }
    }

    #[test]
    fn deformed_square_memory_deterministic() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(2, 2),
            })
            .unwrap();
        let mem = memory_circuit(
            &patch.layout().unwrap(),
            &NoiseModel::ideal(),
            3,
            MemoryBasis::Z,
        );
        assert_deterministic(&mem.circuit);
    }

    #[test]
    fn deformed_heavy_hex_split_chain_deterministic() {
        let mut patch = DeformedPatch::new(Lattice::HeavyHex, 5, 5);
        let layout = patch.layout().unwrap();
        let stab = layout
            .stabilizers
            .iter()
            .find(|s| s.weight() == 4 && s.kind == StabKind::X)
            .unwrap();
        let Readout::Chain { parts } = &stab.readout else {
            panic!()
        };
        let mid = parts[0].chain[3];
        patch
            .apply(DeformInstruction::AncQRmHorDeg2 { ancilla: mid })
            .unwrap();
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            let mem = memory_circuit(&patch.layout().unwrap(), &NoiseModel::ideal(), 2, basis);
            assert_deterministic(&mem.circuit);
        }
    }

    #[test]
    fn detector_count_scales_with_rounds() {
        let layout = rotated_patch(3, 3);
        let m2 = memory_circuit(&layout, &NoiseModel::ideal(), 2, MemoryBasis::Z);
        let m4 = memory_circuit(&layout, &NoiseModel::ideal(), 4, MemoryBasis::Z);
        // Each extra round adds one detector per stabilizer (8 here).
        assert_eq!(
            m4.circuit.num_detectors() - m2.circuit.num_detectors(),
            2 * 8
        );
    }

    #[test]
    fn noise_sites_present_under_uniform_model() {
        let mem = memory_circuit(
            &rotated_patch(3, 3),
            &NoiseModel::uniform(0.001),
            2,
            MemoryBasis::Z,
        );
        assert!(mem.circuit.num_noise_sites() > 50);
    }

    #[test]
    fn drift_rate_table_reweight_matches_fresh_extraction() {
        use caliqec_match::MatchingGraph;
        use caliqec_stab::extract_dem;

        let layout = rotated_patch(3, 3);
        let mem = memory_circuit(&layout, &NoiseModel::uniform(0.002), 3, MemoryBasis::Z);
        let dem = extract_dem(&mem.circuit);
        let mut graph = MatchingGraph::from_dem(&dem);

        let mut drifted = NoiseModel::uniform(0.002);
        drifted.drift_qubit(data_coord(1, 1), 0.02);
        drifted.drift_pair(data_coord(0, 0), data_coord(0, 1), 0.03);
        graph
            .reweight(&drift_rate_table(&mem, &dem, &drifted))
            .unwrap();

        // Regenerating the circuit under the drifted model and re-extracting
        // must agree bit-for-bit with the incremental reweight: the circuit
        // structure is identical, only the noise-op probabilities moved.
        let fresh_mem = memory_circuit(&layout, &drifted, 3, MemoryBasis::Z);
        let fresh = MatchingGraph::from_dem(&extract_dem(&fresh_mem.circuit));
        assert_eq!(graph.num_nodes(), fresh.num_nodes());
        assert_eq!(graph.edges().len(), fresh.edges().len());
        let mut moved = 0usize;
        for (a, b) in graph.edges().iter().zip(fresh.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            if a.probability != 0.002 {
                moved += 1;
            }
        }
        assert!(
            moved > 0,
            "drift must actually move some edge probabilities"
        );
    }

    #[test]
    fn overrides_change_effective_rates() {
        let mut noise = NoiseModel::uniform(0.001);
        let q = data_coord(1, 1);
        noise.drift_qubit(q, 0.05);
        noise.drift_pair(data_coord(0, 0), data_coord(0, 1), 0.07);
        assert_eq!(noise.p1_at(q), 0.05);
        assert_eq!(noise.p1_at(data_coord(0, 0)), 0.001);
        assert_eq!(noise.p2_at(data_coord(0, 1), data_coord(0, 0)), 0.07);
    }
}
