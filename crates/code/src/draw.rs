//! ASCII rendering of patch layouts.
//!
//! Draws data qubits, ancillas (square syndrome qubits or heavy-hex bridge
//! nodes), superstabilizer markers, and the logical operators — handy for
//! debugging deformations and for documentation.
//!
//! Legend:
//!
//! | glyph | meaning |
//! |---|---|
//! | `o` | data qubit |
//! | `Z` | data qubit on the logical Z chain |
//! | `X` | data qubit on the logical X chain |
//! | `B` | data qubit on both logicals |
//! | `.` | ancilla (syndrome or bridge node) |
//! | `*` | ancilla of a merged superstabilizer |
//! | ` ` | empty (isolated/removed sites leave gaps) |

use crate::layout::{Coord, PatchLayout};
use std::collections::BTreeMap;

/// Renders `layout` as ASCII art.
///
/// # Examples
///
/// ```
/// use caliqec_code::{draw_layout, rotated_patch};
///
/// let art = draw_layout(&rotated_patch(3, 3));
/// assert!(art.contains('o'));
/// assert!(art.contains('B')); // the corner shared by both logicals
/// ```
pub fn draw_layout(layout: &PatchLayout) -> String {
    let mut glyphs: BTreeMap<Coord, char> = BTreeMap::new();
    for s in &layout.stabilizers {
        let mark = if s.is_super() { '*' } else { '.' };
        for a in s.readout.ancillas() {
            glyphs.insert(a, mark);
        }
    }
    for &d in &layout.data {
        let on_z = layout.logical_z.contains(&d);
        let on_x = layout.logical_x.contains(&d);
        let g = match (on_z, on_x) {
            (true, true) => 'B',
            (true, false) => 'Z',
            (false, true) => 'X',
            (false, false) => 'o',
        };
        glyphs.insert(d, g);
    }
    if glyphs.is_empty() {
        return String::new();
    }
    let min_r = glyphs.keys().map(|c| c.r).min().expect("nonempty");
    let max_r = glyphs.keys().map(|c| c.r).max().expect("nonempty");
    let min_c = glyphs.keys().map(|c| c.c).min().expect("nonempty");
    let max_c = glyphs.keys().map(|c| c.c).max().expect("nonempty");
    let mut out = String::new();
    for r in min_r..=max_r {
        let mut line = String::new();
        for c in min_c..=max_c {
            line.push(glyphs.get(&Coord::new(r, c)).copied().unwrap_or(' '));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deform::{DeformInstruction, DeformedPatch, Lattice};
    use crate::heavyhex::heavy_hex_patch;
    use crate::square::{data_coord, rotated_patch};

    #[test]
    fn pristine_square_draws_grid() {
        let art = draw_layout(&rotated_patch(3, 3));
        // 3 data columns separated by the pitch, plus logical markers.
        assert!(art.lines().count() >= 9);
        assert_eq!(art.matches('B').count(), 1);
        assert_eq!(art.matches('Z').count(), 2); // top row minus the corner
        assert_eq!(art.matches('X').count(), 2);
        assert_eq!(art.matches('o').count(), 4);
        assert_eq!(art.matches('.').count(), 8); // one ancilla per stabilizer
    }

    #[test]
    fn heavy_hex_draws_bridges() {
        let art = draw_layout(&heavy_hex_patch(3, 3));
        // 4 interior bridges x 7 + 4 boundary bridges x 3 ancillas.
        assert_eq!(art.matches('.').count(), 40);
    }

    #[test]
    fn deformation_leaves_hole_and_superstab_marker() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(2, 2),
            })
            .unwrap();
        let art = draw_layout(&patch.layout().unwrap());
        assert!(art.contains('*'), "superstabilizer marker expected");
        assert_eq!(art.matches('o').count() + 5 + 4 + 1, 25); // one qubit gone
    }
}
