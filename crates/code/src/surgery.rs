//! Lattice surgery: the joint `Z⊗Z` measurement underlying logical CNOTs
//! (paper Sec. 2.1, Fig. 3e/f).
//!
//! Two distance-`d` patches sit side by side with a one-column routing
//! channel between them. A *rough merge* initializes the channel's data
//! qubits in `|0⟩` and starts measuring the stabilizers of the combined
//! patch; the product of the first-round outcomes of the **new** Z-type
//! stabilizers is the eigenvalue of `Z_L ⊗ Z_R`. After `merge_rounds` of
//! joint stabilization the channel is measured out (a *split*), restoring
//! two separate patches.
//!
//! The circuit carries one logical observable: the *conserved* combination
//! `Z̄_L ⊕ Z̄_R ⊕ m(channel row-0 qubit)` — the merged logical `Z̄_M`, which
//! both patches' `|0̄⟩` preparation pins to zero. The joint `Z⊗Z` projection
//! legitimately randomizes the *individual* final readouts (they are gauge
//! during the merge and are not fault-tolerant quantities), so only the
//! conserved combination is decoded; its post-decoding flip rate is the
//! logical error rate of the surgery operation.

use crate::layout::{PatchLayout, Readout, StabKind};
use crate::memory::NoiseModel;
use crate::square::rotated_patch;
use caliqec_stab::{Basis, Circuit, MeasIdx, Noise1, Noise2, Qubit};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Parameters of a ZZ lattice-surgery experiment.
#[derive(Clone, Copy, Debug)]
pub struct ZzSurgery {
    /// Code distance of both patches.
    pub d: usize,
    /// Stabilizer rounds before the merge.
    pub pre_rounds: usize,
    /// Rounds of joint (merged) stabilization — `d` for full fault tolerance.
    pub merge_rounds: usize,
    /// Rounds after the split, before the transversal readout.
    pub post_rounds: usize,
}

impl Default for ZzSurgery {
    fn default() -> Self {
        ZzSurgery {
            d: 3,
            pre_rounds: 2,
            merge_rounds: 3,
            post_rounds: 2,
        }
    }
}

/// A generated lattice-surgery circuit.
#[derive(Clone, Debug)]
pub struct SurgeryCircuit {
    /// The noisy circuit with detectors and the three observables.
    pub circuit: Circuit,
    /// The merged-phase layout (both patches + channel).
    pub merged: PatchLayout,
    /// Number of new (seam) stabilizers whose product gives `Z⊗Z`.
    pub seam_stabilizers: usize,
}

/// The two separate patches and the merged patch of a width-`d` surgery.
///
/// The left patch occupies data columns `0..d`, the channel column `d`, the
/// right patch columns `d+1..2d+1`; all on the shared coordinate grid.
fn layouts(d: usize) -> (PatchLayout, PatchLayout, PatchLayout) {
    let left = rotated_patch(d, d);
    let mut right = rotated_patch(d, d);
    // Shift the right patch past the channel column.
    right = shift_layout(&right, 0, (d + 1) as i32 * crate::square::PITCH);
    let merged = rotated_patch(d, 2 * d + 1);
    (left, right, merged)
}

fn shift_layout(layout: &PatchLayout, dr: i32, dc: i32) -> PatchLayout {
    use crate::layout::{BoundaryInfo, Coord, Stabilizer};
    let mv = |q: Coord| Coord::new(q.r + dr, q.c + dc);
    let mv_set = |s: &BTreeSet<Coord>| s.iter().map(|&q| mv(q)).collect::<BTreeSet<Coord>>();
    PatchLayout {
        data: mv_set(&layout.data),
        stabilizers: layout
            .stabilizers
            .iter()
            .map(|s| Stabilizer {
                kind: s.kind,
                support: mv_set(&s.support),
                readout: match &s.readout {
                    Readout::Direct { ancilla } => Readout::Direct {
                        ancilla: mv(*ancilla),
                    },
                    Readout::Chain { parts } => Readout::Chain {
                        parts: parts
                            .iter()
                            .map(|p| crate::layout::ChainPart {
                                chain: p.chain.iter().map(|&a| mv(a)).collect(),
                                attach: p.attach.iter().map(|&(k, q)| (k, mv(q))).collect(),
                            })
                            .collect(),
                    },
                },
                merged_from: s.merged_from,
            })
            .collect(),
        logical_z: mv_set(&layout.logical_z),
        logical_x: mv_set(&layout.logical_x),
        boundary: BoundaryInfo {
            left: mv_set(&layout.boundary.left),
            right: mv_set(&layout.boundary.right),
            top: mv_set(&layout.boundary.top),
            bottom: mv_set(&layout.boundary.bottom),
        },
    }
}

/// Generates the full rough-merge (`Z⊗Z`) surgery circuit.
///
/// # Panics
///
/// Panics if any round count is zero.
///
/// # Examples
///
/// ```
/// use caliqec_code::{zz_surgery_circuit, NoiseModel, ZzSurgery};
/// use caliqec_stab::check_deterministic_detectors;
/// use rand::SeedableRng;
///
/// let surgery = zz_surgery_circuit(&ZzSurgery::default(), &NoiseModel::ideal());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// check_deterministic_detectors(&surgery.circuit, 4, &mut rng).unwrap();
/// ```
pub fn zz_surgery_circuit(params: &ZzSurgery, noise: &NoiseModel) -> SurgeryCircuit {
    assert!(
        params.pre_rounds > 0 && params.merge_rounds > 0 && params.post_rounds > 0,
        "every surgery phase needs at least one round"
    );
    let d = params.d;
    let (left, right, merged) = layouts(d);

    // Qubit index assignment over the union of all phases' qubits.
    let mut qubit_at: BTreeMap<crate::layout::Coord, Qubit> = BTreeMap::new();
    for layout in [&left, &right, &merged] {
        for &q in &layout.data {
            let n = qubit_at.len() as Qubit;
            qubit_at.entry(q).or_insert(n);
        }
        for a in layout.ancillas() {
            let n = qubit_at.len() as Qubit;
            qubit_at.entry(a).or_insert(n);
        }
    }
    let mut c = Circuit::new(qubit_at.len());
    let q = |coord: crate::layout::Coord| qubit_at[&coord];

    // --- helpers -----------------------------------------------------------
    let measure_stab = |c: &mut Circuit, stab: &crate::layout::Stabilizer| -> MeasIdx {
        let Readout::Direct { ancilla } = stab.readout else {
            unreachable!("square patches use direct readout")
        };
        let a = q(ancilla);
        match stab.kind {
            StabKind::Z => {
                c.reset(Basis::Z, &[a]);
                c.noise1(Noise1::XError, noise.p_reset, &[a]);
                for &dq in &stab.support {
                    c.cx(q(dq), a);
                    c.noise2(Noise2::Depolarize2, noise.p2_at(dq, ancilla), &[(q(dq), a)]);
                }
                c.measure(a, Basis::Z, noise.p_meas)
            }
            StabKind::X => {
                c.reset(Basis::Z, &[a]);
                c.noise1(Noise1::XError, noise.p_reset, &[a]);
                c.h(a);
                c.noise1(Noise1::Depolarize1, noise.p1_at(ancilla), &[a]);
                for &dq in &stab.support {
                    c.cx(a, q(dq));
                    c.noise2(Noise2::Depolarize2, noise.p2_at(dq, ancilla), &[(a, q(dq))]);
                }
                c.h(a);
                c.noise1(Noise1::Depolarize1, noise.p1_at(ancilla), &[a]);
                c.measure(a, Basis::Z, noise.p_meas)
            }
        }
    };
    let idle = |c: &mut Circuit, layout: &PatchLayout| {
        for &dq in &layout.data {
            c.noise1(Noise1::Depolarize1, noise.idle_at(dq), &[q(dq)]);
        }
    };

    // Stabilizer identity across phases: keyed by (kind, support).
    type StabKey = (StabKind, Vec<crate::layout::Coord>);
    let key_of = |s: &crate::layout::Stabilizer| -> StabKey {
        (s.kind, s.support.iter().copied().collect())
    };
    let mut prev: BTreeMap<StabKey, MeasIdx> = BTreeMap::new();

    // --- phase 1: two separate patches -------------------------------------
    for layout in [&left, &right] {
        let data: Vec<Qubit> = layout.data.iter().map(|&dq| q(dq)).collect();
        c.reset(Basis::Z, &data);
        c.noise1(Noise1::XError, noise.p_reset, &data);
    }
    for round in 0..params.pre_rounds {
        for layout in [&left, &right] {
            idle(&mut c, layout);
            for stab in &layout.stabilizers {
                let m = measure_stab(&mut c, stab);
                match prev.get(&key_of(stab)) {
                    Some(&pm) => {
                        c.detector(&[m, pm]);
                    }
                    None if round == 0 && stab.kind == StabKind::Z => {
                        c.detector(&[m]);
                    }
                    None => {}
                }
                prev.insert(key_of(stab), m);
            }
        }
    }

    // --- phase 2: merge -----------------------------------------------------
    // Initialize the channel column in |0>.
    let channel: Vec<crate::layout::Coord> = merged
        .data
        .iter()
        .copied()
        .filter(|dq| !left.data.contains(dq) && !right.data.contains(dq))
        .collect();
    let channel_q: Vec<Qubit> = channel.iter().map(|&dq| q(dq)).collect();
    c.reset(Basis::Z, &channel_q);
    c.noise1(Noise1::XError, noise.p_reset, &channel_q);

    let mut seam_product: Vec<MeasIdx> = Vec::new();
    let mut pending_split: Vec<(BTreeSet<crate::layout::Coord>, StabKind, Vec<MeasIdx>)> =
        Vec::new();
    for round in 0..params.merge_rounds {
        idle(&mut c, &merged);
        for stab in &merged.stabilizers {
            let m = measure_stab(&mut c, stab);
            let key = key_of(stab);
            match prev.get(&key) {
                Some(&pm) => {
                    c.detector(&[m, pm]);
                }
                None => {
                    // A stabilizer new to the merged phase. New Z
                    // stabilizers are deterministic (channel in |0>), and
                    // those absent from the separate patches carry the
                    // Z⊗Z information; new X stabilizers start random,
                    // so no anchor.
                    if round == 0 && stab.kind == StabKind::Z {
                        c.detector(&[m]);
                        seam_product.push(m);
                    }
                }
            }
            prev.insert(key, m);
        }
    }
    let seam_stabilizers = seam_product.len();

    // --- phase 3: split ------------------------------------------------------
    // Measure out the channel column in Z (compatible with Z stabilizers).
    let mut channel_meas: BTreeMap<crate::layout::Coord, MeasIdx> = BTreeMap::new();
    for &dq in &channel {
        let m = c.measure(q(dq), Basis::Z, noise.p_meas);
        channel_meas.insert(dq, m);
    }
    // Anchor each merged-phase Z stabilizer overlapping the channel to the
    // split readout: the surviving patch stabilizers continue, the channel
    // contribution is measured.
    for stab in &merged.stabilizers {
        if stab.kind != StabKind::Z {
            continue;
        }
        let channel_part: Vec<MeasIdx> = stab
            .support
            .iter()
            .filter_map(|dq| channel_meas.get(dq).copied())
            .collect();
        if channel_part.is_empty() {
            continue;
        }
        // Detector: last merged measurement ⊕ measured channel qubits ⊕ the
        // surviving separate-phase stabilizer's next measurement. We anchor
        // to the *next* round below by re-seeding `prev` for the separate
        // stabilizers that share the remaining support.
        let mut records = vec![prev[&key_of(stab)]];
        records.extend(channel_part);
        let remaining: BTreeSet<_> = stab
            .support
            .iter()
            .copied()
            .filter(|dq| !channel_meas.contains_key(dq))
            .collect();
        if remaining.is_empty() {
            c.detector(&records);
        } else {
            // The boundary stabilizer that re-emerges after the split was
            // randomized by the merge's seam X stabilizers: its pre-merge
            // record must not be compared against. Drop the stale entry so
            // the post-split round anchors through the split bookkeeping.
            let stale: StabKey = (stab.kind, remaining.iter().copied().collect());
            prev.remove(&stale);
            // The remaining support is exactly a boundary stabilizer of the
            // left or right patch; fold this anchor into its next round by
            // remembering the combined parity (handled via a synthetic prev
            // entry: we cannot store multi-record prevs, so we emit the
            // cross-phase detector when that stabilizer is next measured).
            pending_split.push((remaining, stab.kind, records));
        }
    }

    // --- phase 4: separate patches again ------------------------------------
    for round in 0..params.post_rounds {
        for layout in [&left, &right] {
            idle(&mut c, layout);
            for stab in &layout.stabilizers {
                let m = measure_stab(&mut c, stab);
                let key = key_of(stab);
                match prev.get(&key) {
                    Some(&pm) => {
                        c.detector(&[m, pm]);
                    }
                    None if round == 0 => {
                        // Re-emerging boundary stabilizer: anchor through the
                        // split bookkeeping if present.
                        if let Some(pos) = pending_split
                            .iter()
                            .position(|(sup, kind, _)| *kind == stab.kind && *sup == stab.support)
                        {
                            let (_, _, mut records) = pending_split.swap_remove(pos);
                            records.push(m);
                            c.detector(&records);
                        }
                    }
                    None => {}
                }
                prev.insert(key, m);
            }
        }
    }

    // --- final transversal readout ------------------------------------------
    let mut final_meas: BTreeMap<crate::layout::Coord, MeasIdx> = BTreeMap::new();
    for layout in [&left, &right] {
        for &dq in &layout.data {
            let m = c.measure(q(dq), Basis::Z, noise.p_meas);
            final_meas.insert(dq, m);
        }
    }
    for layout in [&left, &right] {
        for stab in &layout.stabilizers {
            if stab.kind != StabKind::Z {
                continue;
            }
            let mut records: Vec<MeasIdx> = stab.support.iter().map(|dq| final_meas[dq]).collect();
            records.push(prev[&key_of(stab)]);
            c.detector(&records);
        }
    }
    // The one protected observable: the conserved merged logical
    // Z̄_M = Z̄_L · Z_channel(row 0) · Z̄_R, pinned to zero by the |0̄⟩|0̄⟩
    // preparation. Individual Z̄_L / Z̄_R become gauge during the merge and
    // are deliberately NOT tracked as observables.
    let z_left: Vec<MeasIdx> = left.logical_z.iter().map(|dq| final_meas[dq]).collect();
    let z_right: Vec<MeasIdx> = right.logical_z.iter().map(|dq| final_meas[dq]).collect();
    let mut consistency: Vec<MeasIdx> = Vec::new();
    consistency.extend(z_left);
    consistency.extend(z_right);
    for (&dq, &m) in &channel_meas {
        if merged.logical_z.contains(&dq) {
            consistency.push(m);
        }
    }
    c.observable(0, &consistency);

    SurgeryCircuit {
        circuit: c,
        merged,
        seam_stabilizers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::square::data_coord;
    use caliqec_match::{estimate_ler, graph_for_circuit, SampleOptions, UnionFindDecoder};
    use caliqec_stab::check_deterministic_detectors;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn surgery_detectors_are_deterministic() {
        for d in [3usize, 5] {
            let s = zz_surgery_circuit(
                &ZzSurgery {
                    d,
                    ..ZzSurgery::default()
                },
                &NoiseModel::ideal(),
            );
            let mut rng = StdRng::seed_from_u64(1);
            check_deterministic_detectors(&s.circuit, 4, &mut rng)
                .unwrap_or_else(|e| panic!("d={d}: {e}"));
        }
    }

    #[test]
    fn consistency_observable_is_noiselessly_deterministic() {
        let s = zz_surgery_circuit(&ZzSurgery::default(), &NoiseModel::ideal());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let shot = caliqec_stab::noiseless_shot(&s.circuit, &mut rng);
            assert!(!shot.observables[0], "conserved observable flipped");
        }
    }

    #[test]
    fn seam_stabilizers_exist() {
        let s = zz_surgery_circuit(&ZzSurgery::default(), &NoiseModel::ideal());
        assert!(
            s.seam_stabilizers >= 2,
            "merge must introduce new Z stabilizers (got {})",
            s.seam_stabilizers
        );
    }

    #[test]
    fn consistency_observable_is_protected() {
        // Under mild noise, the decoded surgery consistency (obs 2) fails
        // rarely — this is the logical error rate of the ZZ measurement.
        let s = zz_surgery_circuit(&ZzSurgery::default(), &NoiseModel::uniform(1e-3));
        let mut dec = UnionFindDecoder::new(graph_for_circuit(&s.circuit));
        let mut rng = StdRng::seed_from_u64(7);
        let est = estimate_ler(
            &s.circuit,
            &mut dec,
            SampleOptions {
                min_shots: 30_000,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(
            est.per_shot() < 0.05,
            "surgery LER too high: {}",
            est.per_shot()
        );
    }

    #[test]
    fn shifted_layout_is_valid() {
        let (left, right, merged) = layouts(3);
        left.validate().unwrap();
        right.validate().unwrap();
        merged.validate().unwrap();
        // Right patch occupies the columns past the channel.
        assert!(right.data.contains(&data_coord(0, 4)));
        assert!(left.data.is_disjoint(&right.data));
        assert!(left.data.is_subset(&merged.data));
        assert!(right.data.is_subset(&merged.data));
    }
}
