//! Generic surface-code patch layouts.
//!
//! A [`PatchLayout`] is the lattice-agnostic description of a (possibly
//! deformed) surface-code patch: data qubits, stabilizers with their readout
//! hardware, logical operators, and boundary membership. Both the square and
//! heavy-hexagon generators produce this representation, and the deformation
//! instructions rewrite it.
//!
//! ## Coordinates
//!
//! All qubits live on an integer grid with data qubits at multiples of 4
//! (`(4r, 4c)`), leaving room for square-lattice ancillas at face centers
//! (`(4r+2, 4c+2)`) and for the heavy-hex 7-ancilla bridges inside faces.
//!
//! ## Conventions
//!
//! - Z-type weight-2 boundary stabilizers sit on the **left/right** edges;
//!   the **logical Z** is a horizontal chain connecting left to right.
//! - X-type weight-2 boundary stabilizers sit on the **top/bottom** edges;
//!   the **logical X** is a vertical chain connecting top to bottom.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A lattice coordinate (row, column).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Coord {
    /// Row (grows downward).
    pub r: i32,
    /// Column (grows rightward).
    pub c: i32,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(r: i32, c: i32) -> Coord {
        Coord { r, c }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Coord) -> i32 {
        (self.r - other.r).abs() + (self.c - other.c).abs()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.r, self.c)
    }
}

/// The Pauli type of a stabilizer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StabKind {
    /// Product of X on the support.
    X,
    /// Product of Z on the support.
    Z,
}

impl StabKind {
    /// The opposite stabilizer type.
    pub fn opposite(self) -> StabKind {
        match self {
            StabKind::X => StabKind::Z,
            StabKind::Z => StabKind::X,
        }
    }
}

/// One contiguous segment of a heavy-hex ancilla bridge.
///
/// A pristine stabilizer has a single part; removing a bridge ancilla splits
/// the chain into parts, each measuring a *gauge* operator over its attached
/// data qubits. The stabilizer outcome is the XOR of the part outcomes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChainPart {
    /// Bridge ancillas in relay order.
    pub chain: Vec<Coord>,
    /// `(chain index, data qubit)` attachment points, in relay order.
    pub attach: Vec<(usize, Coord)>,
}

impl ChainPart {
    /// The qubit whose measurement yields this part's gauge outcome.
    pub fn measured_qubit(&self) -> Coord {
        *self.chain.last().expect("chain is never empty")
    }

    /// The data qubits this part is attached to (the gauge support).
    pub fn gauge_support(&self) -> BTreeSet<Coord> {
        self.attach.iter().map(|&(_, q)| q).collect()
    }
}

/// How a stabilizer's parity is read out.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Readout {
    /// A single syndrome ancilla directly coupled to every support qubit
    /// (square lattice, and merged superstabilizers).
    Direct {
        /// The syndrome qubit.
        ancilla: Coord,
    },
    /// A heavy-hex ancilla bridge, possibly split into several gauge parts
    /// whose outcomes are XORed to give the stabilizer value.
    Chain {
        /// Gauge parts in measurement order (one part when pristine).
        parts: Vec<ChainPart>,
    },
}

impl Readout {
    /// Convenience constructor for a single-part chain readout.
    pub fn single_chain(chain: Vec<Coord>, attach: Vec<(usize, Coord)>) -> Readout {
        Readout::Chain {
            parts: vec![ChainPart { chain, attach }],
        }
    }

    /// All ancilla qubits used by this readout.
    pub fn ancillas(&self) -> Vec<Coord> {
        match self {
            Readout::Direct { ancilla } => vec![*ancilla],
            Readout::Chain { parts } => parts.iter().flat_map(|p| p.chain.clone()).collect(),
        }
    }

    /// The qubit(s) whose measurements are XORed into the stabilizer outcome.
    pub fn measured_qubits(&self) -> Vec<Coord> {
        match self {
            Readout::Direct { ancilla } => vec![*ancilla],
            Readout::Chain { parts } => parts.iter().map(|p| p.measured_qubit()).collect(),
        }
    }
}

/// One stabilizer generator of a patch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Stabilizer {
    /// Pauli type.
    pub kind: StabKind,
    /// Data qubits in the support.
    pub support: BTreeSet<Coord>,
    /// Readout hardware.
    pub readout: Readout,
    /// Number of original stabilizers merged into this one (1 = pristine;
    /// ≥ 2 = superstabilizer).
    pub merged_from: usize,
}

impl Stabilizer {
    /// Whether this is a merged superstabilizer.
    pub fn is_super(&self) -> bool {
        self.merged_from > 1
    }

    /// The stabilizer weight (support size).
    pub fn weight(&self) -> usize {
        self.support.len()
    }
}

/// Which patch boundary a qubit belongs to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundaryInfo {
    /// Data qubits on the left (Z-type) boundary.
    pub left: BTreeSet<Coord>,
    /// Data qubits on the right (Z-type) boundary.
    pub right: BTreeSet<Coord>,
    /// Data qubits on the top (X-type) boundary.
    pub top: BTreeSet<Coord>,
    /// Data qubits on the bottom (X-type) boundary.
    pub bottom: BTreeSet<Coord>,
}

/// Validation failure for a [`PatchLayout`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// A stabilizer's support is not a subset of the data qubits.
    SupportOutsideData {
        /// Index of the offending stabilizer.
        stabilizer: usize,
    },
    /// Two opposite-type stabilizers overlap on an odd number of qubits.
    Anticommuting {
        /// Indices of the offending pair.
        pair: (usize, usize),
    },
    /// A stabilizer has an empty support.
    EmptySupport {
        /// Index of the offending stabilizer.
        stabilizer: usize,
    },
    /// A logical operator anticommutes with a stabilizer.
    LogicalAnticommutes {
        /// Index of the offending stabilizer.
        stabilizer: usize,
        /// Which logical operator ("Z" or "X").
        logical: StabKind,
    },
    /// The logical X and Z operators do not anticommute with each other.
    LogicalsCommute,
    /// A data qubit appears in more than two same-type stabilizers.
    OvercrowdedQubit {
        /// The offending data qubit.
        qubit: Coord,
    },
    /// Ancilla and data coordinates collide.
    AncillaCollision {
        /// The clashing coordinate.
        qubit: Coord,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::SupportOutsideData { stabilizer } => {
                write!(f, "stabilizer {stabilizer} acts outside the data set")
            }
            LayoutError::Anticommuting { pair } => {
                write!(f, "stabilizers {} and {} anticommute", pair.0, pair.1)
            }
            LayoutError::EmptySupport { stabilizer } => {
                write!(f, "stabilizer {stabilizer} has empty support")
            }
            LayoutError::LogicalAnticommutes {
                stabilizer,
                logical,
            } => write!(
                f,
                "logical {logical:?} anticommutes with stabilizer {stabilizer}"
            ),
            LayoutError::LogicalsCommute => write!(f, "logical X and Z do not anticommute"),
            LayoutError::OvercrowdedQubit { qubit } => {
                write!(f, "qubit {qubit} is in more than two same-type stabilizers")
            }
            LayoutError::AncillaCollision { qubit } => {
                write!(f, "coordinate {qubit} is both data and ancilla")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A (possibly deformed) surface-code patch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PatchLayout {
    /// Data qubits.
    pub data: BTreeSet<Coord>,
    /// Stabilizer generators.
    pub stabilizers: Vec<Stabilizer>,
    /// Support of the logical Z operator (left↔right chain).
    pub logical_z: BTreeSet<Coord>,
    /// Support of the logical X operator (top↔bottom chain).
    pub logical_x: BTreeSet<Coord>,
    /// Boundary membership.
    pub boundary: BoundaryInfo,
}

impl PatchLayout {
    /// All ancilla qubits of every stabilizer readout.
    pub fn ancillas(&self) -> BTreeSet<Coord> {
        self.stabilizers
            .iter()
            .flat_map(|s| s.readout.ancillas())
            .collect()
    }

    /// Total physical qubits (data + ancilla).
    pub fn num_physical_qubits(&self) -> usize {
        self.data.len() + self.ancillas().len()
    }

    /// Stabilizers of the given type, with their indices.
    pub fn stabilizers_of(&self, kind: StabKind) -> impl Iterator<Item = (usize, &Stabilizer)> {
        self.stabilizers
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.kind == kind)
    }

    /// Indices of the `kind`-type stabilizers containing `qubit`.
    pub fn stabilizers_containing(&self, qubit: Coord, kind: StabKind) -> Vec<usize> {
        self.stabilizers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind && s.support.contains(&qubit))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of merged superstabilizers.
    pub fn num_superstabilizers(&self) -> usize {
        self.stabilizers.iter().filter(|s| s.is_super()).count()
    }

    /// Validates the layout invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: support containment, pairwise
    /// stabilizer commutation, logical-operator commutation/anticommutation,
    /// per-qubit stabilizer crowding, and data/ancilla coordinate collisions.
    pub fn validate(&self) -> Result<(), LayoutError> {
        for (i, s) in self.stabilizers.iter().enumerate() {
            if s.support.is_empty() {
                return Err(LayoutError::EmptySupport { stabilizer: i });
            }
            if !s.support.is_subset(&self.data) {
                return Err(LayoutError::SupportOutsideData { stabilizer: i });
            }
        }
        // Pairwise commutation: opposite types must overlap evenly.
        for (i, a) in self.stabilizers.iter().enumerate() {
            for (j, b) in self.stabilizers.iter().enumerate().skip(i + 1) {
                if a.kind != b.kind && a.support.intersection(&b.support).count() % 2 == 1 {
                    return Err(LayoutError::Anticommuting { pair: (i, j) });
                }
            }
        }
        // Logical operators commute with every stabilizer of opposite type.
        for (i, s) in self.stabilizers.iter().enumerate() {
            let overlap_z = s.support.intersection(&self.logical_z).count();
            let overlap_x = s.support.intersection(&self.logical_x).count();
            if s.kind == StabKind::X && overlap_z % 2 == 1 {
                return Err(LayoutError::LogicalAnticommutes {
                    stabilizer: i,
                    logical: StabKind::Z,
                });
            }
            if s.kind == StabKind::Z && overlap_x % 2 == 1 {
                return Err(LayoutError::LogicalAnticommutes {
                    stabilizer: i,
                    logical: StabKind::X,
                });
            }
        }
        if !self.logical_z.is_empty()
            && self
                .logical_z
                .intersection(&self.logical_x)
                .count()
                .is_multiple_of(2)
        {
            return Err(LayoutError::LogicalsCommute);
        }
        // Per-qubit crowding (needed by the distance graphs).
        let mut count: BTreeMap<(Coord, StabKind), usize> = BTreeMap::new();
        for s in &self.stabilizers {
            for &q in &s.support {
                *count.entry((q, s.kind)).or_default() += 1;
            }
        }
        for ((q, _), n) in count {
            if n > 2 {
                return Err(LayoutError::OvercrowdedQubit { qubit: q });
            }
        }
        // Coordinate collisions.
        let ancillas = self.ancillas();
        if let Some(&q) = ancillas.intersection(&self.data).next() {
            return Err(LayoutError::AncillaCollision { qubit: q });
        }
        Ok(())
    }
}

/// Symmetric difference of two supports (the support of the operator
/// product).
pub(crate) fn support_product(a: &BTreeSet<Coord>, b: &BTreeSet<Coord>) -> BTreeSet<Coord> {
    a.symmetric_difference(b).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_layout() -> PatchLayout {
        // Two data qubits, one ZZ stabilizer, logicals Z0 (weird but legal
        // for testing) and X0 X1.
        let d0 = Coord::new(0, 0);
        let d1 = Coord::new(0, 4);
        PatchLayout {
            data: [d0, d1].into_iter().collect(),
            stabilizers: vec![Stabilizer {
                kind: StabKind::Z,
                support: [d0, d1].into_iter().collect(),
                readout: Readout::Direct {
                    ancilla: Coord::new(0, 2),
                },
                merged_from: 1,
            }],
            logical_z: [d0].into_iter().collect(),
            logical_x: [d0, d1].into_iter().collect(),
            boundary: BoundaryInfo::default(),
        }
    }

    #[test]
    fn tiny_layout_is_valid() {
        tiny_layout().validate().expect("valid layout");
    }

    #[test]
    fn detects_support_outside_data() {
        let mut l = tiny_layout();
        l.data.remove(&Coord::new(0, 4));
        assert!(matches!(
            l.validate(),
            Err(LayoutError::SupportOutsideData { .. })
        ));
    }

    #[test]
    fn detects_anticommutation() {
        let mut l = tiny_layout();
        let d0 = Coord::new(0, 0);
        l.stabilizers.push(Stabilizer {
            kind: StabKind::X,
            support: [d0].into_iter().collect(),
            readout: Readout::Direct {
                ancilla: Coord::new(2, 0),
            },
            merged_from: 1,
        });
        assert!(matches!(
            l.validate(),
            Err(LayoutError::Anticommuting { .. })
        ));
    }

    #[test]
    fn detects_logical_anticommutation() {
        let mut l = tiny_layout();
        l.logical_x = [Coord::new(0, 0)].into_iter().collect(); // overlaps ZZ once
        assert!(matches!(
            l.validate(),
            Err(LayoutError::LogicalAnticommutes { .. })
        ));
    }

    #[test]
    fn detects_commuting_logicals() {
        let mut l = tiny_layout();
        l.logical_z = [Coord::new(0, 0), Coord::new(0, 4)].into_iter().collect();
        assert!(matches!(l.validate(), Err(LayoutError::LogicalsCommute)));
    }

    #[test]
    fn detects_ancilla_collision() {
        let mut l = tiny_layout();
        l.stabilizers[0].readout = Readout::Direct {
            ancilla: Coord::new(0, 0),
        };
        assert!(matches!(
            l.validate(),
            Err(LayoutError::AncillaCollision { .. })
        ));
    }

    #[test]
    fn support_product_cancels_shared() {
        let a: BTreeSet<_> = [Coord::new(0, 0), Coord::new(0, 4)].into_iter().collect();
        let b: BTreeSet<_> = [Coord::new(0, 4), Coord::new(4, 0)].into_iter().collect();
        let p = support_product(&a, &b);
        assert_eq!(
            p,
            [Coord::new(0, 0), Coord::new(4, 0)].into_iter().collect()
        );
    }

    #[test]
    fn readout_measured_qubit() {
        let chain = Readout::single_chain(
            vec![Coord::new(1, 1), Coord::new(1, 2)],
            vec![(0, Coord::new(0, 0))],
        );
        assert_eq!(chain.measured_qubits(), vec![Coord::new(1, 2)]);
        assert_eq!(chain.ancillas().len(), 2);
    }

    #[test]
    fn coord_ordering_and_distance() {
        assert!(Coord::new(0, 0) < Coord::new(0, 1));
        assert_eq!(Coord::new(1, 2).manhattan(Coord::new(3, 0)), 4);
    }
}
