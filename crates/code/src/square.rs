//! Rotated square-lattice surface-code patch generation.
//!
//! The rotated surface code on a `rows × cols` data grid has `rows*cols - 1`
//! stabilizers: weight-4 checkerboard faces in the interior, weight-2 X faces
//! on the top/bottom boundaries, and weight-2 Z faces on the left/right
//! boundaries. For odd `rows == cols == d` this is the standard distance-`d`
//! rotated code.

use crate::layout::{BoundaryInfo, Coord, PatchLayout, Readout, StabKind, Stabilizer};
use std::collections::BTreeSet;

/// Grid pitch between adjacent data qubits (room for ancillas in between).
pub const PITCH: i32 = 4;

/// Coordinate of the data qubit at grid position `(r, c)`.
pub fn data_coord(r: usize, c: usize) -> Coord {
    Coord::new(PITCH * r as i32, PITCH * c as i32)
}

/// Coordinate of the square-lattice syndrome ancilla of face `(fr, fc)`.
pub fn face_ancilla(fr: i32, fc: i32) -> Coord {
    Coord::new(PITCH * fr + PITCH / 2, PITCH * fc + PITCH / 2)
}

/// The Pauli type of face `(fr, fc)` under the checkerboard convention.
pub fn face_kind(fr: i32, fc: i32) -> StabKind {
    if (fr + fc).rem_euclid(2) == 0 {
        StabKind::Z
    } else {
        StabKind::X
    }
}

/// Enumerates the faces of a `rows × cols` rotated patch as
/// `(fr, fc, kind, corners)`.
pub(crate) fn faces(rows: usize, cols: usize) -> Vec<(i32, i32, StabKind, Vec<Coord>)> {
    let (rows, cols) = (rows as i32, cols as i32);
    let mut out = Vec::new();
    for fr in -1..rows {
        for fc in -1..cols {
            let corners: Vec<Coord> = [(fr, fc), (fr, fc + 1), (fr + 1, fc), (fr + 1, fc + 1)]
                .into_iter()
                .filter(|&(r, c)| r >= 0 && r < rows && c >= 0 && c < cols)
                .map(|(r, c)| data_coord(r as usize, c as usize))
                .collect();
            let kind = face_kind(fr, fc);
            let include = match corners.len() {
                4 => true,
                2 => {
                    let horizontal_side = fr == -1 || fr == rows - 1;
                    let vertical_side = fc == -1 || fc == cols - 1;
                    (horizontal_side && kind == StabKind::X)
                        || (vertical_side && kind == StabKind::Z)
                }
                _ => false,
            };
            if include {
                out.push((fr, fc, kind, corners));
            }
        }
    }
    out
}

/// Generates a pristine rotated surface-code patch.
///
/// The logical Z is the top data row (left↔right); the logical X is the left
/// data column (top↔bottom). The code distance is `min(rows, cols)`.
///
/// # Panics
///
/// Panics unless `rows` and `cols` are at least 2.
///
/// # Examples
///
/// ```
/// use caliqec_code::rotated_patch;
///
/// let patch = rotated_patch(3, 3);
/// assert_eq!(patch.data.len(), 9);
/// assert_eq!(patch.stabilizers.len(), 8);
/// patch.validate().unwrap();
/// ```
pub fn rotated_patch(rows: usize, cols: usize) -> PatchLayout {
    assert!(
        rows >= 2 && cols >= 2,
        "rotated patch requires dimensions >= 2 (got {rows}x{cols})"
    );
    let data: BTreeSet<Coord> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| data_coord(r, c)))
        .collect();
    let stabilizers = faces(rows, cols)
        .into_iter()
        .map(|(fr, fc, kind, corners)| Stabilizer {
            kind,
            support: corners.into_iter().collect(),
            readout: Readout::Direct {
                ancilla: face_ancilla(fr, fc),
            },
            merged_from: 1,
        })
        .collect();
    let logical_z: BTreeSet<Coord> = (0..cols).map(|c| data_coord(0, c)).collect();
    let logical_x: BTreeSet<Coord> = (0..rows).map(|r| data_coord(r, 0)).collect();
    let boundary = BoundaryInfo {
        left: (0..rows).map(|r| data_coord(r, 0)).collect(),
        right: (0..rows).map(|r| data_coord(r, cols - 1)).collect(),
        top: (0..cols).map(|c| data_coord(0, c)).collect(),
        bottom: (0..cols).map(|c| data_coord(rows - 1, c)).collect(),
    };
    PatchLayout {
        data,
        stabilizers,
        logical_z,
        logical_x,
        boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_counts() {
        let p = rotated_patch(3, 3);
        assert_eq!(p.data.len(), 9);
        assert_eq!(p.stabilizers.len(), 8);
        assert_eq!(p.stabilizers_of(StabKind::X).count(), 4);
        assert_eq!(p.stabilizers_of(StabKind::Z).count(), 4);
        p.validate().expect("d=3 patch valid");
    }

    #[test]
    fn all_odd_distances_validate() {
        for d in [3usize, 5, 7, 9, 11] {
            let p = rotated_patch(d, d);
            assert_eq!(p.data.len(), d * d);
            assert_eq!(p.stabilizers.len(), d * d - 1);
            p.validate().unwrap_or_else(|e| panic!("d={d}: {e}"));
        }
    }

    #[test]
    fn rectangular_patch_validates() {
        let p = rotated_patch(3, 7);
        assert_eq!(p.data.len(), 21);
        assert_eq!(p.stabilizers.len(), 20);
        p.validate().expect("3x7 patch valid");
    }

    #[test]
    fn weight_profile() {
        let p = rotated_patch(5, 5);
        let w2 = p.stabilizers.iter().filter(|s| s.weight() == 2).count();
        let w4 = p.stabilizers.iter().filter(|s| s.weight() == 4).count();
        assert_eq!(w2 + w4, p.stabilizers.len());
        // 4 sides * (d-1)/2 weight-2 faces.
        assert_eq!(w2, 8);
        assert_eq!(w4, 16);
    }

    #[test]
    fn boundary_stabilizer_types() {
        let p = rotated_patch(5, 5);
        for s in &p.stabilizers {
            if s.weight() == 2 {
                let rows: BTreeSet<i32> = s.support.iter().map(|q| q.r).collect();
                if rows.len() == 1 {
                    // Horizontal pair: must be on top/bottom, X-type.
                    assert_eq!(s.kind, StabKind::X);
                } else {
                    assert_eq!(s.kind, StabKind::Z);
                }
            }
        }
    }

    #[test]
    fn even_dimensions_supported() {
        // Even dimensions arise transiently during PatchQ_AD enlargement.
        for (r, c) in [(4usize, 3usize), (4, 4), (6, 5)] {
            let p = rotated_patch(r, c);
            assert_eq!(p.stabilizers.len(), r * c - 1);
            p.validate().unwrap_or_else(|e| panic!("{r}x{c}: {e}"));
        }
    }

    #[test]
    fn ancillas_do_not_collide_with_data() {
        let p = rotated_patch(7, 7);
        let anc = p.ancillas();
        assert!(anc.is_disjoint(&p.data));
        // One ancilla per stabilizer on the square lattice.
        assert_eq!(anc.len(), p.stabilizers.len());
    }
}
