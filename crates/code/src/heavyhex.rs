//! Heavy-hexagon surface-code patch generation.
//!
//! Follows the paper's description (Sec. 2.1, Fig. 3c): the stabilizer
//! pattern is that of the rotated surface code, but each stabilizer is read
//! out through an "S"-shaped bridge of seven ancilla qubits (three for the
//! weight-2 boundary stabilizers). Alternating bridge nodes attach to the
//! stabilizer's data qubits (the paper's degree-3 nodes `qa, qc, qe, qg`);
//! the nodes between them are pure bridges (degree-2 nodes `qb, qd, qf`).
//!
//! The parity collector is SWAP-relayed along the bridge, so errors on bridge
//! ancillas propagate into the syndrome — the mechanism behind the paper's
//! observation that heavy-hex devices are *more* sensitive to drifted
//! two-qubit gates (Sec. 8.3).
//!
//! Substitution note (see DESIGN.md): on IBM hardware bridges are shared
//! between neighbouring stabilizers; here each stabilizer owns its bridge.
//! The deformation instructions reproduce the paper's stabilizer-group
//! updates on this model.

use crate::layout::{BoundaryInfo, ChainPart, Coord, PatchLayout, Readout, Stabilizer};
use crate::square::{data_coord, faces, PITCH};
use std::collections::BTreeSet;

/// Role of an ancilla within a heavy-hex bridge.
///
/// Roles are named after the paper's instruction taxonomy: removing the
/// paper's *horizontal* degree-2 node `qd` splits the stabilizer into two
/// weight-2 gauges (our mid-chain node), while removing a *vertical*
/// degree-2 node (`qb`/`qf`) splits off a weight-1 gauge (our outer bridge
/// nodes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BridgeRole {
    /// Attached to a data qubit (the paper's degree-3 nodes
    /// `qa, qc, qe, qg`; target of `AncQ_RM_Deg3`).
    Attach,
    /// The mid-chain bridge whose removal splits the stabilizer into two
    /// equal gauges (the paper's `qd`; target of `AncQ_RM_HorDeg2`).
    MidBridge,
    /// An outer bridge whose removal splits off a single-qubit gauge (the
    /// paper's `qb`/`qf`; target of `AncQ_RM_VerDeg2`).
    OuterBridge,
}

/// Builds the 7-node S-shaped bridge for an interior (weight-4) face.
///
/// Chain order: `p0 p1 p2 p3 p4 p5 p6` with attachments
/// `p0↔top-left, p2↔top-right, p4↔bottom-right, p6↔bottom-left`.
fn interior_bridge(fr: i32, fc: i32, corners: &[Coord]) -> ChainPart {
    let base_r = PITCH * fr;
    let base_c = PITCH * fc;
    let chain = vec![
        Coord::new(base_r + 1, base_c + 1),
        Coord::new(base_r + 1, base_c + 2),
        Coord::new(base_r + 1, base_c + 3),
        Coord::new(base_r + 2, base_c + 3),
        Coord::new(base_r + 3, base_c + 3),
        Coord::new(base_r + 3, base_c + 2),
        Coord::new(base_r + 3, base_c + 1),
    ];
    // Corner coordinates.
    let tl = Coord::new(base_r, base_c);
    let tr = Coord::new(base_r, base_c + PITCH);
    let br = Coord::new(base_r + PITCH, base_c + PITCH);
    let bl = Coord::new(base_r + PITCH, base_c);
    for corner in [tl, tr, br, bl] {
        debug_assert!(corners.contains(&corner), "interior face has 4 corners");
    }
    ChainPart {
        chain,
        attach: vec![(0, tl), (2, tr), (4, br), (6, bl)],
    }
}

/// Builds the 3-node bridge for a weight-2 boundary face.
fn boundary_bridge(fr: i32, fc: i32, corners: &[Coord]) -> ChainPart {
    debug_assert_eq!(corners.len(), 2);
    let (a, b) = (corners[0], corners[1]);
    // Place the bridge between the face center and the data pair, outside the
    // data grid. Midpoint (in lattice units) offset perpendicular to the pair.
    let chain = if a.r == b.r {
        // Horizontal pair (top/bottom boundary): bridge row sits toward the
        // face center row.
        let row = PITCH * fr + PITCH / 2;
        let c0 = a.c.min(b.c);
        vec![
            Coord::new(row, c0 + 1),
            Coord::new(row, c0 + 2),
            Coord::new(row, c0 + 3),
        ]
    } else {
        // Vertical pair (left/right boundary).
        let col = PITCH * fc + PITCH / 2;
        let r0 = a.r.min(b.r);
        vec![
            Coord::new(r0 + 1, col),
            Coord::new(r0 + 2, col),
            Coord::new(r0 + 3, col),
        ]
    };
    let (first, second) = if a < b { (a, b) } else { (b, a) };
    ChainPart {
        chain,
        attach: vec![(0, first), (2, second)],
    }
}

/// Generates a pristine heavy-hexagon surface-code patch.
///
/// Same stabilizer pattern and logical operators as
/// [`crate::rotated_patch`], but with bridge readouts.
///
/// # Panics
///
/// Panics unless `rows` and `cols` are at least 2.
///
/// # Examples
///
/// ```
/// use caliqec_code::heavy_hex_patch;
///
/// let patch = heavy_hex_patch(3, 3);
/// assert_eq!(patch.data.len(), 9);
/// assert_eq!(patch.stabilizers.len(), 8);
/// patch.validate().unwrap();
/// // Heavy-hex needs far more ancillas than the square lattice.
/// assert!(patch.ancillas().len() > patch.stabilizers.len());
/// ```
pub fn heavy_hex_patch(rows: usize, cols: usize) -> PatchLayout {
    assert!(
        rows >= 2 && cols >= 2,
        "heavy-hex patch requires dimensions >= 2 (got {rows}x{cols})"
    );
    let data: BTreeSet<Coord> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| data_coord(r, c)))
        .collect();
    let stabilizers = faces(rows, cols)
        .into_iter()
        .map(|(fr, fc, kind, corners)| {
            let part = if corners.len() == 4 {
                interior_bridge(fr, fc, &corners)
            } else {
                boundary_bridge(fr, fc, &corners)
            };
            Stabilizer {
                kind,
                support: corners.into_iter().collect(),
                readout: Readout::Chain { parts: vec![part] },
                merged_from: 1,
            }
        })
        .collect();
    let logical_z: BTreeSet<Coord> = (0..cols).map(|c| data_coord(0, c)).collect();
    let logical_x: BTreeSet<Coord> = (0..rows).map(|r| data_coord(r, 0)).collect();
    let boundary = BoundaryInfo {
        left: (0..rows).map(|r| data_coord(r, 0)).collect(),
        right: (0..rows).map(|r| data_coord(r, cols - 1)).collect(),
        top: (0..cols).map(|c| data_coord(0, c)).collect(),
        bottom: (0..cols).map(|c| data_coord(rows - 1, c)).collect(),
    };
    PatchLayout {
        data,
        stabilizers,
        logical_z,
        logical_x,
        boundary,
    }
}

/// Classifies a bridge ancilla of `stab` by its role.
///
/// Returns `None` when the coordinate is not part of the stabilizer's bridge.
pub fn bridge_role(stab: &Stabilizer, ancilla: Coord) -> Option<BridgeRole> {
    let Readout::Chain { parts } = &stab.readout else {
        return None;
    };
    for part in parts {
        if let Some(idx) = part.chain.iter().position(|&a| a == ancilla) {
            if part.attach.iter().any(|&(k, _)| k == idx) {
                return Some(BridgeRole::Attach);
            }
            // The middle node of a 7-chain splits the stabilizer 2+2;
            // every other bridge node splits off a singleton gauge.
            if part.chain.len() == 7 && idx == 3 {
                return Some(BridgeRole::MidBridge);
            }
            return Some(BridgeRole::OuterBridge);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_heavy_hex_counts() {
        let p = heavy_hex_patch(3, 3);
        p.validate().expect("heavy-hex d=3 valid");
        // 4 interior faces * 7 + 4 boundary faces * 3 ancillas.
        assert_eq!(p.ancillas().len(), 4 * 7 + 4 * 3);
    }

    #[test]
    fn larger_patches_validate() {
        for d in [3usize, 5, 7] {
            heavy_hex_patch(d, d)
                .validate()
                .unwrap_or_else(|e| panic!("d={d}: {e}"));
        }
    }

    #[test]
    fn bridge_roles_classified() {
        let p = heavy_hex_patch(3, 3);
        let interior = p
            .stabilizers
            .iter()
            .find(|s| s.weight() == 4)
            .expect("interior stabilizer");
        let Readout::Chain { parts } = &interior.readout else {
            panic!("heavy-hex uses chains");
        };
        let chain = &parts[0].chain;
        assert_eq!(bridge_role(interior, chain[0]), Some(BridgeRole::Attach));
        assert_eq!(
            bridge_role(interior, chain[1]),
            Some(BridgeRole::OuterBridge)
        );
        assert_eq!(bridge_role(interior, chain[3]), Some(BridgeRole::MidBridge));
        assert_eq!(bridge_role(interior, Coord::new(999, 999)), None);
    }

    #[test]
    fn bridges_do_not_collide() {
        let p = heavy_hex_patch(5, 5);
        // All ancillas distinct and disjoint from data.
        let mut seen = BTreeSet::new();
        for s in &p.stabilizers {
            for a in s.readout.ancillas() {
                assert!(seen.insert(a), "duplicate ancilla {a}");
                assert!(!p.data.contains(&a), "ancilla {a} collides with data");
            }
        }
    }

    #[test]
    fn attachments_cover_support() {
        let p = heavy_hex_patch(5, 5);
        for s in &p.stabilizers {
            let Readout::Chain { parts } = &s.readout else {
                panic!("chain readout expected");
            };
            let attached: BTreeSet<Coord> = parts
                .iter()
                .flat_map(|p| p.attach.iter().map(|&(_, q)| q))
                .collect();
            assert_eq!(attached, s.support);
        }
    }
}
