//! Code distance of (deformed) patch layouts.
//!
//! The Z-distance is the minimum weight of an undetectable Z-error chain
//! connecting the two Z-boundaries (left↔right): each data qubit is an edge
//! between the (at most two) X-type stabilizers containing it, or between an
//! X-stabilizer and a boundary terminal; the distance is the shortest
//! terminal-to-terminal path. The X-distance is the dual construction over
//! Z-type stabilizers and the top/bottom boundaries.
//!
//! Qubits contained in exactly one X-stabilizer but not on an original
//! boundary (which happens next to deformation holes whose neighbouring
//! stabilizer was absorbed) are treated as free chain terminals and assigned
//! to the geometrically nearest side; see DESIGN.md for the discussion.

use crate::layout::{Coord, PatchLayout, StabKind};
use std::collections::{HashMap, VecDeque};

/// Distances of a patch layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeDistance {
    /// Minimum weight of a logical Z (left↔right chain).
    pub z: usize,
    /// Minimum weight of a logical X (top↔bottom chain).
    pub x: usize,
}

impl CodeDistance {
    /// The code distance `min(d_x, d_z)`.
    pub fn min(&self) -> usize {
        self.z.min(self.x)
    }
}

/// Computes both code distances of `layout`.
///
/// # Examples
///
/// ```
/// use caliqec_code::{code_distance, rotated_patch};
///
/// let patch = rotated_patch(5, 5);
/// let d = code_distance(&patch);
/// assert_eq!(d.z, 5);
/// assert_eq!(d.x, 5);
/// ```
pub fn code_distance(layout: &PatchLayout) -> CodeDistance {
    CodeDistance {
        z: directional_distance(layout, StabKind::Z),
        x: directional_distance(layout, StabKind::X),
    }
}

/// Shortest undetectable `chain_kind` error chain between the matching pair
/// of boundaries.
fn directional_distance(layout: &PatchLayout, chain_kind: StabKind) -> usize {
    // A Z-chain is detected by X-stabilizers, and vice versa.
    let detector_kind = chain_kind.opposite();
    let stabs: Vec<usize> = layout
        .stabilizers_of(detector_kind)
        .map(|(i, _)| i)
        .collect();
    let index_of: HashMap<usize, usize> = stabs.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    // Node ids: 0..n = detector stabilizers, n = terminal A, n+1 = terminal B.
    let n = stabs.len();
    let (term_a, term_b) = (n, n + 1);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n + 2];

    // Boundary membership for this chain direction.
    let (side_a, side_b) = match chain_kind {
        StabKind::Z => (&layout.boundary.left, &layout.boundary.right),
        StabKind::X => (&layout.boundary.top, &layout.boundary.bottom),
    };
    // Geometric midline for free-terminal assignment.
    let coords: Vec<Coord> = layout.data.iter().copied().collect();
    let mid = match chain_kind {
        StabKind::Z => {
            let (lo, hi) = coords.iter().fold((i32::MAX, i32::MIN), |(lo, hi), q| {
                (lo.min(q.c), hi.max(q.c))
            });
            (lo + hi) / 2
        }
        StabKind::X => {
            let (lo, hi) = coords.iter().fold((i32::MAX, i32::MIN), |(lo, hi), q| {
                (lo.min(q.r), hi.max(q.r))
            });
            (lo + hi) / 2
        }
    };

    for &q in &layout.data {
        let containing = layout.stabilizers_containing(q, detector_kind);
        let endpoints: Vec<usize> = match containing.len() {
            2 => containing.iter().map(|i| index_of[i]).collect(),
            1 => {
                let s = index_of[&containing[0]];
                let terminal = if side_a.contains(&q) {
                    term_a
                } else if side_b.contains(&q) {
                    term_b
                } else {
                    // Free terminal next to an absorbed stabilizer: assign
                    // by geometry.
                    let pos = match chain_kind {
                        StabKind::Z => q.c,
                        StabKind::X => q.r,
                    };
                    if pos <= mid {
                        term_a
                    } else {
                        term_b
                    }
                };
                vec![s, terminal]
            }
            // A qubit in zero detector stabilizers cannot carry a chain
            // segment usefully (errors on it are invisible but disconnected).
            _ => continue,
        };
        adj[endpoints[0]].push(endpoints[1]);
        adj[endpoints[1]].push(endpoints[0]);
    }

    // BFS from terminal A to terminal B (unit edge weights = qubit count).
    let mut dist = vec![usize::MAX; n + 2];
    let mut queue = VecDeque::new();
    dist[term_a] = 0;
    queue.push_back(term_a);
    while let Some(u) = queue.pop_front() {
        if u == term_b {
            return dist[u];
        }
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    // Disconnected: no logical of this orientation exists (e.g. the patch
    // was measured out). Report the trivial upper bound.
    layout.data.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deform::{DeformInstruction, DeformedPatch, Lattice, Side};
    use crate::heavyhex::heavy_hex_patch;
    use crate::square::{data_coord, rotated_patch};

    #[test]
    fn pristine_distances_match_dimensions() {
        for d in [3usize, 5, 7, 9] {
            let dist = code_distance(&rotated_patch(d, d));
            assert_eq!(dist.z, d, "z distance at d={d}");
            assert_eq!(dist.x, d, "x distance at d={d}");
        }
    }

    #[test]
    fn rectangular_patch_distances() {
        let dist = code_distance(&rotated_patch(3, 7));
        assert_eq!(dist.x, 3); // top-bottom chain crosses 3 rows
        assert_eq!(dist.z, 7); // left-right chain crosses 7 columns
        assert_eq!(dist.min(), 3);
    }

    #[test]
    fn heavy_hex_distances_match_square() {
        let dist = code_distance(&heavy_hex_patch(5, 5));
        assert_eq!(dist.z, 5);
        assert_eq!(dist.x, 5);
    }

    #[test]
    fn hole_reduces_distance() {
        let mut patch = DeformedPatch::new(Lattice::Square, 7, 7);
        let pristine = code_distance(&patch.layout().unwrap());
        assert_eq!(pristine.min(), 7);
        // Punch a hole in the middle row: Z-chains can route through the
        // merged superstabilizer region more cheaply.
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(3, 3),
            })
            .unwrap();
        let after = code_distance(&patch.layout().unwrap());
        assert!(after.min() < 7, "distance after hole: {after:?}");
        assert!(after.min() >= 5, "single hole costs at most ~2: {after:?}");
    }

    #[test]
    fn enlargement_restores_distance() {
        let mut patch = DeformedPatch::new(Lattice::Square, 7, 7);
        patch
            .apply(DeformInstruction::DataQRm {
                qubit: data_coord(3, 3),
            })
            .unwrap();
        let hurt = code_distance(&patch.layout().unwrap());
        // Grow the patch until the lost distance is recovered.
        patch
            .apply(DeformInstruction::PatchQAd { side: Side::Right })
            .unwrap();
        patch
            .apply(DeformInstruction::PatchQAd { side: Side::Right })
            .unwrap();
        patch
            .apply(DeformInstruction::PatchQAd { side: Side::Bottom })
            .unwrap();
        patch
            .apply(DeformInstruction::PatchQAd { side: Side::Bottom })
            .unwrap();
        let healed = code_distance(&patch.layout().unwrap());
        assert!(
            healed.min() >= 7,
            "enlarged distance {healed:?} vs hurt {hurt:?}"
        );
    }

    #[test]
    fn shrink_reduces_distance() {
        let mut patch = DeformedPatch::new(Lattice::Square, 5, 5);
        patch
            .apply(DeformInstruction::PatchQRm { side: Side::Right })
            .unwrap();
        let dist = code_distance(&patch.layout().unwrap());
        assert_eq!(dist.z, 4);
        assert_eq!(dist.x, 5);
    }
}
