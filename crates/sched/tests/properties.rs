//! Property-based tests of the scheduler: Algorithm 1's invariants (drift
//! constraint, frequency bounds), LER-model monotonicity, and adaptive
//! scheduling optimality over its baselines.

use caliqec_device::{DeviceConfig, DeviceModel, DriftDistribution};
use caliqec_sched::{
    adaptive_schedule, assign_groups, bulk_schedule, cluster_workloads, ideal_frequency, ler,
    p_tar_for, sequential_schedule, uniform_frequency, GateDrift,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drift_set() -> impl Strategy<Value = Vec<GateDrift>> {
    prop::collection::vec(1.0f64..100.0, 1..24).prop_map(|ds| {
        ds.into_iter()
            .enumerate()
            .map(|(gate, drift_hours)| GateDrift { gate, drift_hours })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1 always satisfies the drift constraint and lands between
    /// the ideal bound and the uniform policy.
    #[test]
    fn grouping_invariants(gates in drift_set()) {
        let groups = assign_groups(&gates);
        prop_assert!(groups.t_cali_hours > 0.0);
        for g in &gates {
            let period = groups.period_of(g.gate).expect("gate grouped");
            prop_assert!(
                period <= g.drift_hours + 1e-9,
                "gate {} period {} > drift {}",
                g.gate, period, g.drift_hours
            );
        }
        let f = groups.frequency();
        prop_assert!(f >= ideal_frequency(&gates) - 1e-9);
        prop_assert!(f <= uniform_frequency(&gates) + 1e-9);
    }

    /// Every gate appears in exactly one group.
    #[test]
    fn grouping_partitions_gates(gates in drift_set()) {
        let groups = assign_groups(&gates);
        let total: usize = groups.groups.values().map(|v| v.len()).sum();
        prop_assert_eq!(total, gates.len());
        let mut seen: Vec<usize> = groups.groups.values().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), gates.len());
    }

    /// The LER model is monotone: increasing in p, decreasing in d, and
    /// `p_tar_for` inverts it.
    #[test]
    fn ler_model_monotone(
        d in 1usize..30,
        p in 1e-5f64..9e-3,
        factor in 1.01f64..3.0,
        target in 1e-12f64..1e-3,
    ) {
        let d = 2 * d + 1; // odd distances
        prop_assert!(ler(d, p * factor) >= ler(d, p));
        if p < 0.0099 {
            prop_assert!(ler(d + 2, p) <= ler(d, p));
        }
        let pt = p_tar_for(d, target);
        prop_assert!((ler(d, pt) - target).abs() / target < 1e-6);
    }

    /// Adaptive intra-group scheduling never does worse than sequential or
    /// bulk on the space-time metric, and all strategies calibrate every
    /// gate exactly once.
    #[test]
    fn adaptive_dominates_baselines(seed in 0u64..500, take in 4usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let device = DeviceModel::synthetic(
            &DeviceConfig {
                rows: 6,
                cols: 6,
                drift: DriftDistribution::current(),
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        let step = (device.gates.len() / take).max(1);
        let gates: Vec<usize> = (0..device.gates.len()).step_by(step).collect();
        let workloads = cluster_workloads(&device, &gates);
        let seq = sequential_schedule(&workloads);
        let bulk = bulk_schedule(&workloads);
        let (adaptive, chosen) = adaptive_schedule(&workloads, 8);
        prop_assert!(adaptive.space_time_cost() <= seq.space_time_cost() + 1e-9);
        prop_assert!(adaptive.space_time_cost() <= bulk.space_time_cost() + 1e-9);
        prop_assert!(chosen >= 1);
        prop_assert_eq!(seq.num_calibrations(), gates.len());
        prop_assert_eq!(bulk.num_calibrations(), gates.len());
        prop_assert_eq!(adaptive.num_calibrations(), gates.len());
    }

    /// Batches never contain crosstalk-conflicting workloads: regions within
    /// a batch are pairwise disjoint.
    #[test]
    fn batches_are_conflict_free(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let device = DeviceModel::synthetic(
            &DeviceConfig { rows: 5, cols: 5, ..DeviceConfig::default() },
            &mut rng,
        );
        let gates: Vec<usize> = (0..device.gates.len()).step_by(3).collect();
        let workloads = cluster_workloads(&device, &gates);
        let (schedule, _) = adaptive_schedule(&workloads, 6);
        for batch in &schedule.batches {
            for (i, a) in batch.workloads.iter().enumerate() {
                for b in batch.workloads.iter().skip(i + 1) {
                    prop_assert!(
                        a.region.is_disjoint(&b.region),
                        "conflicting workloads batched together"
                    );
                }
            }
        }
    }
}
