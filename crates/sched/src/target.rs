//! Targeted physical error rate determination (paper Sec. 5.2, Eqns. 4–5).
//!
//! A distance-`d` surface code achieves
//! `LER(d, p) = α · (p / p_th)^((d+1)/2)` with `α ≈ 0.03` and
//! `p_th ≈ 0.01` under circuit-level noise. Given a qubit budget the
//! compiler picks the largest affordable distance and the loosest physical
//! error target `p_tar` that still meets `LER_tar`, trading code distance
//! against calibration frequency.

/// The rotated-surface-code LER model constant `α` (Eqn. 4).
pub const ALPHA: f64 = 0.03;

/// The circuit-level surface-code threshold `p_th` (Eqn. 4).
pub const P_TH: f64 = 0.01;

/// Logical error rate per QEC round of a distance-`d` code at physical error
/// rate `p` (Eqn. 4).
///
/// # Examples
///
/// ```
/// use caliqec_sched::ler;
///
/// // At threshold the model returns α regardless of distance.
/// assert!((ler(11, 0.01) - 0.03).abs() < 1e-12);
/// // Below threshold, larger distances suppress the LER exponentially.
/// assert!(ler(11, 0.001) < ler(7, 0.001));
/// ```
pub fn ler(d: usize, p: f64) -> f64 {
    (ALPHA * (p / P_TH).powf((d as f64 + 1.0) / 2.0)).min(1.0)
}

/// The largest physical error rate at which a distance-`d` code still meets
/// `ler_tar` (inverse of Eqn. 4).
pub fn p_tar_for(d: usize, ler_tar: f64) -> f64 {
    assert!(ler_tar > 0.0 && ler_tar < 1.0, "ler target out of range");
    P_TH * (ler_tar / ALPHA).powf(2.0 / (d as f64 + 1.0))
}

/// Physical qubits of a distance-`d` rotated patch (data + syndrome).
pub fn patch_qubits(d: usize) -> usize {
    2 * d * d - 1
}

/// The compiler's choice of code distance and physical error target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetChoice {
    /// Chosen code distance.
    pub d: usize,
    /// Targeted physical error rate `p_tar`.
    pub p_tar: f64,
    /// Physical qubits per logical patch at this distance.
    pub qubits_per_patch: usize,
}

/// Chooses the largest affordable odd code distance within
/// `qubit_budget_per_logical` physical qubits per patch, then derives the
/// loosest `p_tar` meeting `ler_tar` (Sec. 5.2, "Targeted Physical Error
/// Rate Determination").
///
/// Returns `None` when even the loosest feasible target would require
/// `p_tar ≥ p_th` to be violated — i.e. no affordable distance meets the
/// target (`p_tar` must stay below threshold, Eqn. 5).
pub fn choose_target(qubit_budget_per_logical: usize, ler_tar: f64) -> Option<TargetChoice> {
    let mut d = 3;
    while patch_qubits(d + 2) <= qubit_budget_per_logical {
        d += 2;
    }
    if patch_qubits(d) > qubit_budget_per_logical {
        return None;
    }
    let p_tar = p_tar_for(d, ler_tar);
    if p_tar >= P_TH {
        // Above threshold, drift never violates the target — but the model
        // (Eqn. 4) is only valid below threshold; cap just under it.
        return Some(TargetChoice {
            d,
            p_tar: P_TH * 0.999,
            qubits_per_patch: patch_qubits(d),
        });
    }
    if ler(d, p_tar) > ler_tar * (1.0 + 1e-9) {
        return None;
    }
    Some(TargetChoice {
        d,
        p_tar,
        qubits_per_patch: patch_qubits(d),
    })
}

/// Smallest odd distance achieving `ler_tar` at physical rate `p` (the
/// sizing rule used for Table 2's per-benchmark distances).
pub fn distance_for(p: f64, ler_tar: f64) -> Option<usize> {
    if p >= P_TH {
        return None;
    }
    let mut d = 3usize;
    while ler(d, p) > ler_tar {
        d += 2;
        if d > 201 {
            return None;
        }
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ler_decreases_with_distance() {
        let p = 1e-3;
        assert!(ler(5, p) < ler(3, p));
        assert!(ler(25, p) < ler(11, p));
    }

    #[test]
    fn ler_is_alpha_at_threshold() {
        for d in [3, 11, 25] {
            assert!((ler(d, P_TH) - ALPHA).abs() < 1e-12);
        }
    }

    #[test]
    fn p_tar_inverts_ler() {
        for d in [3usize, 9, 17] {
            let tar = 1e-8;
            let p = p_tar_for(d, tar);
            assert!((ler(d, p) - tar).abs() / tar < 1e-6);
        }
    }

    #[test]
    fn larger_distance_tolerates_higher_p_tar() {
        let tar = 1e-9;
        assert!(p_tar_for(21, tar) > p_tar_for(11, tar));
    }

    #[test]
    fn choose_target_picks_largest_affordable_distance() {
        let choice = choose_target(patch_qubits(11), 1e-9).expect("feasible");
        assert_eq!(choice.d, 11);
        assert!(choice.p_tar < P_TH);
        assert!(ler(choice.d, choice.p_tar) <= 1e-9 * (1.0 + 1e-6));
    }

    #[test]
    fn choose_target_infeasible_when_budget_tiny() {
        assert_eq!(choose_target(10, 1e-9), None);
    }

    #[test]
    fn choose_target_caps_p_tar_below_threshold() {
        // A huge budget with a loose target: p_tar must stay below p_th.
        let choice = choose_target(patch_qubits(31), 1e-2).expect("feasible");
        assert!(choice.p_tar < P_TH);
    }

    #[test]
    fn distance_for_matches_paper_scale() {
        // At p = 1e-3 a retry-risk-grade LER (~1e-12 per round) needs a
        // distance in the paper's 25-41 range.
        let d = distance_for(1e-3, 1e-12).expect("feasible");
        assert!((15..=45).contains(&d), "d = {d}");
        assert_eq!(distance_for(0.02, 1e-9), None);
    }

    #[test]
    fn patch_qubit_count() {
        assert_eq!(patch_qubits(3), 17);
        assert_eq!(patch_qubits(5), 49);
    }
}
