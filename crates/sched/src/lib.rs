//! # caliqec-sched — compile-time calibration scheduling
//!
//! The compilation stage of CaliQEC (paper Sec. 5): given the
//! preparation-time characterization of a device, decide *when* each gate is
//! calibrated and *which* calibrations run together.
//!
//! - [`assign_groups`]: drift-based calibration grouping (Algorithm 1) —
//!   minimizes the total calibration frequency `Σ 1/T_g` subject to every
//!   gate being recalibrated before its error reaches `p_tar`.
//! - [`choose_target`] / [`ler`]: targeted physical-error-rate determination
//!   from the qubit budget and the LER target (Eqns. 4–5).
//! - [`cluster_workloads`] / [`greedy_schedule`] / [`adaptive_schedule`]:
//!   intra-group scheduling balancing dependencies, crosstalk, and the
//!   distance-loss budget `Δd` (Sec. 5.3).
//! - [`build_plan`]: the full compiled [`CalibrationPlan`].
//!
//! # Example
//!
//! ```
//! use caliqec_sched::{assign_groups, GateDrift, ideal_frequency, uniform_frequency};
//!
//! let gates: Vec<GateDrift> = [6.0, 11.0, 13.0, 21.0, 29.0]
//!     .iter()
//!     .enumerate()
//!     .map(|(gate, &drift_hours)| GateDrift { gate, drift_hours })
//!     .collect();
//! let groups = assign_groups(&gates);
//! // Adaptive grouping sits between the ideal bound and the uniform policy.
//! assert!(groups.frequency() <= uniform_frequency(&gates));
//! assert!(groups.frequency() >= ideal_frequency(&gates));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod group;
mod intra;
mod plan;
mod target;

pub use group::{
    assign_groups, frequency_for, ideal_frequency, uniform_frequency, CalibrationGroups, GateDrift,
};
pub use intra::{
    adaptive_schedule, bulk_schedule, cluster_workloads, greedy_schedule, region_loss,
    sequential_schedule, Batch, IntraSchedule, Workload,
};
pub use plan::{build_plan, CalibrationPlan, PlanConfig};
pub use target::{
    choose_target, distance_for, ler, p_tar_for, patch_qubits, TargetChoice, ALPHA, P_TH,
};
