//! The full compile-time calibration plan (paper Fig. 5, compilation stage).
//!
//! Combines drift-based grouping (Sec. 5.2) with intra-group scheduling
//! (Sec. 5.3): every gate gets a calibration period `k · T_Cali`, and each
//! group's due workloads are clustered and batched under the distance-loss
//! budget `Δd`.

use crate::group::{assign_groups, CalibrationGroups, GateDrift};
use crate::intra::{adaptive_schedule, cluster_workloads, IntraSchedule};
use caliqec_device::{DeviceModel, GateId};
use std::collections::BTreeMap;

/// Inputs to plan construction.
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Targeted physical error rate `p_tar` each gate must stay below.
    pub p_tar: f64,
    /// Maximum tolerable code-distance loss `Δd` (the paper uses 4).
    pub delta_d_max: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            p_tar: 5e-3,
            delta_d_max: 4,
        }
    }
}

/// A compiled calibration plan: periodic groups with batched intra-group
/// schedules.
#[derive(Clone, Debug)]
pub struct CalibrationPlan {
    /// The drift-based grouping.
    pub groups: CalibrationGroups,
    /// Per-group batched schedule.
    pub schedules: BTreeMap<usize, IntraSchedule>,
    /// The `Δd` chosen for each group by the adaptive scheduler.
    pub chosen_delta_d: BTreeMap<usize, usize>,
}

impl CalibrationPlan {
    /// The base calibration interval in hours.
    pub fn t_cali_hours(&self) -> f64 {
        self.groups.t_cali_hours
    }

    /// The largest `Δd` any group requires — the patch-enlargement headroom
    /// the architecture must reserve.
    pub fn max_delta_d(&self) -> usize {
        self.chosen_delta_d.values().copied().max().unwrap_or(0)
    }

    /// Total calibration operations over a horizon.
    pub fn operations_over(&self, horizon_hours: f64) -> usize {
        self.groups.operations_over(horizon_hours)
    }

    /// Whether every group's schedule fits within its calibration interval
    /// (`t_cali` of a gate must not exceed `T_Cali`, Sec. 5.3).
    pub fn fits_intervals(&self) -> bool {
        self.schedules
            .values()
            .all(|s| s.total_time() <= self.groups.t_cali_hours + 1e-12)
    }

    /// Gates calibrated during interval `m` (1-based).
    pub fn due_in_interval(&self, m: usize) -> Vec<GateId> {
        self.groups.due_in_interval(m)
    }
}

/// Builds the complete calibration plan for a device (compilation stage).
///
/// Drift times are derived from each gate's (characterized) drift model and
/// the target `p_tar`; groups come from Algorithm 1; each group's workloads
/// are clustered and adaptively batched.
///
/// # Examples
///
/// ```
/// use caliqec_device::{DeviceConfig, DeviceModel};
/// use caliqec_sched::{build_plan, PlanConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let device = DeviceModel::synthetic(
///     &DeviceConfig { rows: 4, cols: 4, ..DeviceConfig::default() },
///     &mut rng,
/// );
/// let plan = build_plan(&device, &PlanConfig::default());
/// assert!(plan.t_cali_hours() > 0.0);
/// assert!(plan.max_delta_d() >= 1);
/// ```
pub fn build_plan(device: &DeviceModel, config: &PlanConfig) -> CalibrationPlan {
    let drifts: Vec<GateDrift> = device
        .gates
        .iter()
        .enumerate()
        .map(|(gate, info)| GateDrift {
            gate,
            drift_hours: info.drift.time_to_reach(config.p_tar).max(1e-3),
        })
        .collect();
    let groups = assign_groups(&drifts);
    let mut schedules = BTreeMap::new();
    let mut chosen_delta_d = BTreeMap::new();
    for (&k, gates) in &groups.groups {
        let workloads = cluster_workloads(device, gates);
        let (schedule, delta) = adaptive_schedule(&workloads, config.delta_d_max);
        schedules.insert(k, schedule);
        chosen_delta_d.insert(k, delta);
    }
    CalibrationPlan {
        groups,
        schedules,
        chosen_delta_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliqec_device::DeviceConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan_for(rows: usize, cols: usize, seed: u64) -> (DeviceModel, CalibrationPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let device = DeviceModel::synthetic(
            &DeviceConfig {
                rows,
                cols,
                ..DeviceConfig::default()
            },
            &mut rng,
        );
        let plan = build_plan(&device, &PlanConfig::default());
        (device, plan)
    }

    #[test]
    fn plan_covers_every_gate() {
        let (device, plan) = plan_for(4, 4, 3);
        let grouped: usize = plan.groups.groups.values().map(|g| g.len()).sum();
        assert_eq!(grouped, device.gates.len());
        let scheduled: usize = plan.schedules.values().map(|s| s.num_calibrations()).sum();
        assert_eq!(scheduled, device.gates.len());
    }

    #[test]
    fn plan_respects_drift_constraint() {
        let (device, plan) = plan_for(4, 4, 5);
        let config = PlanConfig::default();
        for (gate, info) in device.gates.iter().enumerate() {
            let period = plan.groups.period_of(gate).expect("gate grouped");
            let drift = info.drift.time_to_reach(config.p_tar);
            assert!(
                period <= drift + 1e-9,
                "gate {gate}: period {period:.2} > drift {drift:.2}"
            );
        }
    }

    #[test]
    fn plan_delta_d_bounded_by_need() {
        let (_, plan) = plan_for(6, 6, 7);
        // Every group's chosen Δd is at least 1 (something gets isolated).
        assert!(plan.chosen_delta_d.values().all(|&d| d >= 1));
        assert!(plan.max_delta_d() >= 1);
    }

    #[test]
    fn interval_schedule_is_periodic() {
        let (_, plan) = plan_for(4, 4, 11);
        let due1 = plan.due_in_interval(1);
        // At interval max_k the slowest group fires alongside group 1.
        let max_k = *plan.groups.groups.keys().max().unwrap();
        let due_max = plan.due_in_interval(max_k);
        for g in &plan.groups.groups[&max_k] {
            assert!(due_max.contains(g));
        }
        assert!(due_max.len() >= due1.len().min(plan.groups.groups[&max_k].len()));
    }
}
