//! Intra-group calibration scheduling (paper Sec. 5.3).
//!
//! Within one calibration interval the scheduler must order the due
//! workloads while handling the paper's three challenges:
//!
//! 1. **Dependencies** — gates whose isolation regions share acted qubits are
//!    clustered and calibrated collectively ([`cluster_workloads`]).
//! 2. **Crosstalk** — workloads with touching regions cannot run
//!    concurrently; a largest-first greedy packs conflict-free batches
//!    ([`greedy_schedule`]).
//! 3. **Distance-loss trade-off** — isolating more qubits at once costs more
//!    code distance; [`adaptive_schedule`] sweeps the tolerable loss `Δd`
//!    and picks the minimizer of the space-time cost
//!    `Cost = Δd · Σ t_cali` ([`IntraSchedule::space_time_cost`]).

use caliqec_device::{DeviceModel, GateId, QubitId};
use std::collections::BTreeSet;

/// One calibration workload: a gate (or dependency cluster of gates), its
/// duration, and the code region isolated while it runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// The gates calibrated together (one, unless clustered).
    pub gates: Vec<GateId>,
    /// Calibration duration in hours (max over clustered gates).
    pub t_cali_hours: f64,
    /// The isolated region: acted qubits plus crosstalk neighbourhood.
    pub region: BTreeSet<QubitId>,
    /// Qubits the gates act on (used for dependency detection).
    pub acted: BTreeSet<QubitId>,
    /// Code-distance loss caused by isolating this region.
    pub loss: usize,
}

impl Workload {
    /// Builds the workload of a single gate on `device`.
    pub fn from_gate(device: &DeviceModel, gate: GateId) -> Workload {
        let info = &device.gates[gate];
        let acted: BTreeSet<QubitId> = info.kind.qubits().into_iter().collect();
        let region: BTreeSet<QubitId> = acted
            .iter()
            .copied()
            .chain(info.nbr.iter().copied())
            .collect();
        let loss = region_loss(&region, device.grid_cols);
        Workload {
            gates: vec![gate],
            t_cali_hours: info.t_cali_hours,
            region,
            acted,
            loss,
        }
    }

    fn merge(&mut self, other: &Workload) {
        self.gates.extend(other.gates.iter().copied());
        self.t_cali_hours = self.t_cali_hours.max(other.t_cali_hours);
        self.region.extend(other.region.iter().copied());
        self.acted.extend(other.acted.iter().copied());
    }
}

/// Code-distance loss of isolating `region`: a single qubit costs 1, a
/// larger region costs its grid diameter (the paper's Δd accounting: "four
/// single-qubit isolations or the isolation of a region with a diameter of
/// 4", Sec. 7.3).
pub fn region_loss(region: &BTreeSet<QubitId>, grid_cols: usize) -> usize {
    if region.is_empty() {
        return 0;
    }
    let pos: Vec<(i64, i64)> = region
        .iter()
        .map(|&q| {
            (
                (q as usize / grid_cols) as i64,
                (q as usize % grid_cols) as i64,
            )
        })
        .collect();
    let (mut dr, mut dc) = (0i64, 0i64);
    for a in &pos {
        for b in &pos {
            dr = dr.max((a.0 - b.0).abs());
            dc = dc.max((a.1 - b.1).abs());
        }
    }
    (dr.max(dc) as usize).max(1)
}

/// One batch of concurrently calibrated workloads.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    /// Workloads running in parallel.
    pub workloads: Vec<Workload>,
    /// Batch duration: the longest member calibration.
    pub duration_hours: f64,
    /// Total code-distance loss while the batch runs.
    pub distance_loss: usize,
}

/// An intra-group schedule: batches executed back to back.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntraSchedule {
    /// Batches in execution order.
    pub batches: Vec<Batch>,
}

impl IntraSchedule {
    /// Total wall-clock calibration time.
    pub fn total_time(&self) -> f64 {
        self.batches.iter().map(|b| b.duration_hours).sum()
    }

    /// The largest simultaneous distance loss — the `Δd` the patch must be
    /// enlarged by.
    pub fn max_distance_loss(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.distance_loss)
            .max()
            .unwrap_or(0)
    }

    /// Space-time overhead `Δd × T(Cal)` (paper Sec. 8.2.3).
    pub fn space_time_cost(&self) -> f64 {
        self.max_distance_loss() as f64 * self.total_time()
    }

    /// Number of gate calibrations in the schedule.
    pub fn num_calibrations(&self) -> usize {
        self.batches
            .iter()
            .flat_map(|b| &b.workloads)
            .map(|w| w.gates.len())
            .sum()
    }
}

/// Whether two workloads share acted qubits (dependency → must cluster).
fn dependent(a: &Workload, b: &Workload) -> bool {
    !a.acted.is_disjoint(&b.region) || !b.acted.is_disjoint(&a.region)
}

/// Whether two workloads conflict through crosstalk (regions touch).
fn conflicts(a: &Workload, b: &Workload) -> bool {
    !a.region.is_disjoint(&b.region)
}

/// Clusters dependent workloads (paper challenge 1): gates whose acted
/// qubits fall inside another gate's isolation region are calibrated
/// collectively.
pub fn cluster_workloads(device: &DeviceModel, gates: &[GateId]) -> Vec<Workload> {
    let mut clusters: Vec<Workload> = Vec::new();
    for &g in gates {
        let w = Workload::from_gate(device, g);
        // Merge with every existing cluster it depends on.
        let mut merged = w;
        let mut remaining = Vec::with_capacity(clusters.len());
        for c in clusters.into_iter() {
            if dependent(&merged, &c) {
                merged.merge(&c);
            } else {
                remaining.push(c);
            }
        }
        merged.loss = region_loss(&merged.region, device.grid_cols);
        remaining.push(merged);
        clusters = remaining;
    }
    clusters
}

/// Largest-first greedy batching under a distance-loss cap (paper
/// challenge 2): workloads are sorted by region size descending and packed
/// into the earliest batch without crosstalk conflicts whose loss stays at
/// or below `loss_cap`.
pub fn greedy_schedule(workloads: &[Workload], loss_cap: usize) -> IntraSchedule {
    let mut sorted: Vec<&Workload> = workloads.iter().collect();
    sorted.sort_by(|a, b| {
        b.region
            .len()
            .cmp(&a.region.len())
            .then_with(|| a.gates.cmp(&b.gates))
    });
    let mut schedule = IntraSchedule::default();
    let mut remaining = sorted;
    while !remaining.is_empty() {
        let mut batch = Batch {
            workloads: Vec::new(),
            duration_hours: 0.0,
            distance_loss: 0,
        };
        let mut deferred = Vec::new();
        for w in remaining {
            let fits_loss = batch.distance_loss + w.loss <= loss_cap || batch.workloads.is_empty();
            let clash = batch.workloads.iter().any(|m| conflicts(m, w));
            if fits_loss && !clash {
                batch.distance_loss += w.loss;
                batch.duration_hours = batch.duration_hours.max(w.t_cali_hours);
                batch.workloads.push(w.clone());
            } else {
                deferred.push(w);
            }
        }
        schedule.batches.push(batch);
        remaining = deferred;
    }
    schedule
}

/// Sequential baseline: one workload per batch (paper Sec. 8.2.3).
pub fn sequential_schedule(workloads: &[Workload]) -> IntraSchedule {
    IntraSchedule {
        batches: workloads
            .iter()
            .map(|w| Batch {
                duration_hours: w.t_cali_hours,
                distance_loss: w.loss,
                workloads: vec![w.clone()],
            })
            .collect(),
    }
}

/// Bulk baseline: maximal parallelism, only the crosstalk constraint
/// (paper Sec. 8.2.3).
pub fn bulk_schedule(workloads: &[Workload]) -> IntraSchedule {
    greedy_schedule(workloads, usize::MAX)
}

/// Adaptive scheduling (paper challenge 3): sweeps the tolerable distance
/// loss `Δd` from the largest single-workload loss up to `delta_d_max` and
/// returns the schedule minimizing the space-time cost, together with the
/// chosen `Δd`.
pub fn adaptive_schedule(workloads: &[Workload], delta_d_max: usize) -> (IntraSchedule, usize) {
    let min_cap = workloads.iter().map(|w| w.loss).max().unwrap_or(1);
    let bulk_cap = bulk_schedule(workloads).max_distance_loss().max(min_cap);
    let mut best: Option<(IntraSchedule, usize, f64)> = None;
    for cap in min_cap..=bulk_cap.max(delta_d_max) {
        let s = greedy_schedule(workloads, cap);
        let cost = s.space_time_cost();
        let better = match &best {
            None => true,
            Some((_, _, c)) => cost < *c - 1e-12,
        };
        if better {
            best = Some((s, cap, cost));
        }
    }
    let (schedule, cap, _) = best.expect("at least one cap evaluated");
    (schedule, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliqec_device::{DeviceConfig, DriftDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device(rows: usize, cols: usize) -> DeviceModel {
        let mut rng = StdRng::seed_from_u64(17);
        DeviceModel::synthetic(
            &DeviceConfig {
                rows,
                cols,
                drift: DriftDistribution::current(),
                ..DeviceConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn single_qubit_region_loss_is_diameter() {
        let r: BTreeSet<QubitId> = [0].into_iter().collect();
        assert_eq!(region_loss(&r, 8), 1);
        let r2: BTreeSet<QubitId> = [0, 1, 2].into_iter().collect(); // a row
        assert_eq!(region_loss(&r2, 8), 2);
    }

    #[test]
    fn clustering_merges_overlapping_gates() {
        let dev = device(4, 4);
        // Gate 0 (1q on qubit 0) and the coupler gate acting on qubit 0.
        let coupler = dev
            .gates
            .iter()
            .position(|g| g.kind.qubits().contains(&0) && g.kind.qubits().len() == 2)
            .unwrap();
        let clusters = cluster_workloads(&dev, &[0, coupler]);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].gates.len(), 2);
    }

    #[test]
    fn distant_gates_stay_separate() {
        let dev = device(8, 8);
        let clusters = cluster_workloads(&dev, &[0, 63]);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn sequential_uses_one_batch_per_workload() {
        let dev = device(8, 8);
        let ws = cluster_workloads(&dev, &[0, 27, 63]);
        let s = sequential_schedule(&ws);
        assert_eq!(s.batches.len(), ws.len());
        assert!(s.total_time() >= ws.iter().map(|w| w.t_cali_hours).sum::<f64>() - 1e-12);
    }

    #[test]
    fn bulk_parallelizes_conflict_free_workloads() {
        let dev = device(8, 8);
        let ws = cluster_workloads(&dev, &[0, 27, 63]); // pairwise distant
        let s = bulk_schedule(&ws);
        assert_eq!(s.batches.len(), 1);
        assert_eq!(s.batches[0].workloads.len(), 3);
    }

    #[test]
    fn crosstalk_conflict_forces_serialization() {
        let dev = device(8, 8);
        // Adjacent 1q gates: regions overlap.
        let ws = cluster_workloads(&dev, &[0, 2]);
        assert_eq!(ws.len(), 2, "adjacent-but-not-dependent gates");
        let s = bulk_schedule(&ws);
        assert_eq!(s.batches.len(), 2);
    }

    #[test]
    fn greedy_respects_loss_cap() {
        let dev = device(8, 8);
        let ws = cluster_workloads(&dev, &[0, 27, 63]);
        let per = ws.iter().map(|w| w.loss).max().unwrap();
        let s = greedy_schedule(&ws, per); // room for ~one workload per batch
        assert!(s.max_distance_loss() <= per.max(ws.iter().map(|w| w.loss).max().unwrap()));
        assert!(s.batches.len() >= 2);
    }

    #[test]
    fn adaptive_cost_never_worse_than_baselines() {
        let dev = device(8, 8);
        let gates: Vec<usize> = vec![0, 5, 18, 27, 40, 54, 63];
        let ws = cluster_workloads(&dev, &gates);
        let (adaptive, _) = adaptive_schedule(&ws, 8);
        let seq = sequential_schedule(&ws);
        let bulk = bulk_schedule(&ws);
        assert!(adaptive.space_time_cost() <= seq.space_time_cost() + 1e-9);
        assert!(adaptive.space_time_cost() <= bulk.space_time_cost() + 1e-9);
    }

    #[test]
    fn schedules_cover_all_gates() {
        let dev = device(8, 8);
        let gates: Vec<usize> = (0..20).collect();
        let ws = cluster_workloads(&dev, &gates);
        for s in [
            sequential_schedule(&ws),
            bulk_schedule(&ws),
            adaptive_schedule(&ws, 6).0,
        ] {
            assert_eq!(s.num_calibrations(), 20);
        }
    }
}
