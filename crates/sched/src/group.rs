//! Drift-based calibration grouping (paper Sec. 5.2, Algorithm 1).
//!
//! Gates are binned into groups sharing a calibration period `k · T_Cali`,
//! where the base interval `T_Cali` is chosen by scanning the candidate
//! values `T_drift[g] / k` (Algorithm 1) and keeping the one minimizing the
//! total calibration frequency `Σ_g 1/T_g` (Eqn. 3) subject to the drift
//! constraint `T_g ≤ T_drift,p_tar[g]`.

use caliqec_device::GateId;
use std::collections::BTreeMap;

/// A drift-constrained calibration workload: one gate and the time its error
/// rate takes to reach the targeted physical error rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateDrift {
    /// The gate.
    pub gate: GateId,
    /// `T_drift,p_tar[g]`: hours until the gate's error reaches `p_tar`.
    pub drift_hours: f64,
}

/// The result of drift-based grouping.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationGroups {
    /// The base calibration interval `T_Cali` in hours.
    pub t_cali_hours: f64,
    /// Group `k` → gates calibrated every `k · T_Cali` hours.
    pub groups: BTreeMap<usize, Vec<GateId>>,
}

impl CalibrationGroups {
    /// Total calibration frequency `Σ_g 1/T_g` in calibrations per hour
    /// (Eqn. 3).
    pub fn frequency(&self) -> f64 {
        self.groups
            .iter()
            .map(|(&k, gates)| gates.len() as f64 / (k as f64 * self.t_cali_hours))
            .sum()
    }

    /// The calibration period of `gate`, if grouped.
    pub fn period_of(&self, gate: GateId) -> Option<f64> {
        self.groups.iter().find_map(|(&k, gates)| {
            gates
                .contains(&gate)
                .then_some(k as f64 * self.t_cali_hours)
        })
    }

    /// Group indices whose gates are due in the `m`-th interval
    /// (`m` counts from 1; group `k` fires when `k` divides `m`).
    pub fn due_in_interval(&self, m: usize) -> Vec<GateId> {
        assert!(m >= 1, "intervals count from 1");
        self.groups
            .iter()
            .filter(|(&k, _)| m.is_multiple_of(k))
            .flat_map(|(_, gates)| gates.iter().copied())
            .collect()
    }

    /// Total calibration operations executed over `horizon_hours`.
    pub fn operations_over(&self, horizon_hours: f64) -> usize {
        self.groups
            .iter()
            .map(|(&k, gates)| {
                let period = k as f64 * self.t_cali_hours;
                gates.len() * (horizon_hours / period).floor() as usize
            })
            .sum()
    }
}

/// Group index of a gate for a given base interval: the largest `k` with
/// `k · T_Cali ≤ T_drift` (Eqn. 2), clamped to at least 1.
fn group_index(drift_hours: f64, t_cali: f64) -> usize {
    ((drift_hours / t_cali).floor() as usize).max(1)
}

/// The calibration frequency achieved by base interval `t_cali` (Eqn. 3).
pub fn frequency_for(gates: &[GateDrift], t_cali: f64) -> f64 {
    gates
        .iter()
        .map(|g| 1.0 / (group_index(g.drift_hours, t_cali) as f64 * t_cali))
        .sum()
}

/// The unattainable lower bound: every gate calibrated exactly at its drift
/// time (the "ideal grouping" of Sec. 8.2.2, which ignores crosstalk).
pub fn ideal_frequency(gates: &[GateDrift]) -> f64 {
    gates.iter().map(|g| 1.0 / g.drift_hours).sum()
}

/// The uniform strategy: all gates calibrated whenever the most fragile one
/// requires it (Sec. 8.2.2's "uniform calibration" baseline).
pub fn uniform_frequency(gates: &[GateDrift]) -> f64 {
    let t_min = gates
        .iter()
        .map(|g| g.drift_hours)
        .fold(f64::INFINITY, f64::min);
    gates.len() as f64 / t_min
}

/// Algorithm 1: chooses the base interval `T_Cali` and assigns groups.
///
/// Candidate intervals are `T_drift[g] / k` for every gate and every integer
/// `k` that keeps the candidate at or below the minimum drift time; the
/// frequency-minimizing candidate wins, with ties going to the larger
/// interval (more grouping flexibility, Sec. 5.2).
///
/// # Panics
///
/// Panics if `gates` is empty or any drift time is non-positive.
///
/// # Examples
///
/// The paper's worked example (Fig. 7): five gates where `T_Cali = 5 h`
/// groups them as {g1,g2,g3} + {g4,g5} at 0.80 cal/h, while `T_Cali = 4 h`
/// redistributes them for 0.66 cal/h.
///
/// ```
/// use caliqec_sched::{assign_groups, GateDrift};
///
/// let gates: Vec<GateDrift> = [5.0, 8.0, 9.0, 12.0, 13.0]
///     .iter()
///     .enumerate()
///     .map(|(gate, &drift_hours)| GateDrift { gate, drift_hours })
///     .collect();
/// let groups = assign_groups(&gates);
/// assert!((groups.t_cali_hours - 4.0).abs() < 1e-9);
/// assert!((groups.frequency() - 2.0 / 3.0).abs() < 1e-9);
/// ```
pub fn assign_groups(gates: &[GateDrift]) -> CalibrationGroups {
    assert!(!gates.is_empty(), "no gates to group");
    assert!(
        gates.iter().all(|g| g.drift_hours > 0.0),
        "drift times must be positive"
    );
    let t_min = gates
        .iter()
        .map(|g| g.drift_hours)
        .fold(f64::INFINITY, f64::min);
    let mut best_t = t_min;
    let mut best_f = frequency_for(gates, t_min);
    for g in gates {
        // Algorithm 1 line 4: one candidate per gate, T_drift[g]/k with
        // k = ceil(T_drift[g]/T_min) — the aligned interval just below the
        // minimum drift time. (Scanning smaller intervals could shave the
        // frequency further but fragments the schedule; the paper explicitly
        // prefers intervals near T_min for scheduling flexibility.)
        let k = (g.drift_hours / t_min).ceil() as usize;
        let t = g.drift_hours / k as f64;
        let f = frequency_for(gates, t);
        // Prefer strictly lower frequency; on (near-)ties prefer the larger
        // interval.
        if f < best_f - 1e-12 || (f < best_f + 1e-12 && t > best_t) {
            best_f = f;
            best_t = t;
        }
    }
    let mut groups: BTreeMap<usize, Vec<GateId>> = BTreeMap::new();
    for g in gates {
        groups
            .entry(group_index(g.drift_hours, best_t))
            .or_default()
            .push(g.gate);
    }
    CalibrationGroups {
        t_cali_hours: best_t,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gates(drifts: &[f64]) -> Vec<GateDrift> {
        drifts
            .iter()
            .enumerate()
            .map(|(gate, &drift_hours)| GateDrift { gate, drift_hours })
            .collect()
    }

    #[test]
    fn paper_worked_example() {
        // Fig. 7: T_Cali = 5h puts {g1,g2,g3} in Group 1 and {g4,g5} in
        // Group 2 for 3/5 + 2/10 = 0.80 cal/h; T_Cali = 4h redistributes to
        // 1/4 + 2/8 + 2/12 = 0.66 cal/h.
        let g = gates(&[5.0, 8.0, 9.0, 12.0, 13.0]);
        assert!((frequency_for(&g, 5.0) - 0.80).abs() < 1e-9);
        assert!((frequency_for(&g, 4.0) - 2.0 / 3.0).abs() < 1e-9);
        let result = assign_groups(&g);
        assert!((result.t_cali_hours - 4.0).abs() < 1e-9);
        assert_eq!(result.groups[&1].len(), 1);
        assert_eq!(result.groups[&2].len(), 2);
        assert_eq!(result.groups[&3].len(), 2);
    }

    #[test]
    fn grouping_respects_drift_constraint() {
        let g = gates(&[3.0, 7.0, 11.0, 13.0, 29.0]);
        let result = assign_groups(&g);
        for gd in &g {
            let period = result.period_of(gd.gate).expect("gate grouped");
            assert!(
                period <= gd.drift_hours + 1e-9,
                "gate {} period {period} exceeds drift {}",
                gd.gate,
                gd.drift_hours
            );
        }
    }

    #[test]
    fn grouping_beats_uniform_and_respects_ideal_bound() {
        let g = gates(&[4.0, 6.0, 9.0, 14.0, 18.0, 25.0, 30.0]);
        let result = assign_groups(&g);
        let f = result.frequency();
        assert!(f <= uniform_frequency(&g) + 1e-12);
        assert!(f >= ideal_frequency(&g) - 1e-12);
    }

    #[test]
    fn identical_gates_form_single_group() {
        let g = gates(&[10.0, 10.0, 10.0]);
        let result = assign_groups(&g);
        assert_eq!(result.groups.len(), 1);
        assert!((result.frequency() - 0.3).abs() < 1e-9);
        assert!((result.frequency() - ideal_frequency(&g)).abs() < 1e-9);
    }

    #[test]
    fn due_in_interval_schedule() {
        let g = gates(&[4.0, 8.1, 12.2]);
        let result = assign_groups(&g);
        // With T_Cali = 4: groups 1, 2, 3.
        assert!((result.t_cali_hours - 4.0).abs() < 1e-6);
        assert_eq!(result.due_in_interval(1), vec![0]);
        let due2 = result.due_in_interval(2);
        assert!(due2.contains(&0) && due2.contains(&1));
        let due6 = result.due_in_interval(6);
        assert!(due6.contains(&0) && due6.contains(&1) && due6.contains(&2));
    }

    #[test]
    fn operations_over_horizon() {
        let g = gates(&[10.0, 10.0]);
        let result = assign_groups(&g);
        // Two gates every 10 hours -> 2 * 10 ops in 100 hours.
        assert_eq!(result.operations_over(100.0), 20);
    }

    #[test]
    #[should_panic(expected = "no gates")]
    fn empty_input_rejected() {
        let _ = assign_groups(&[]);
    }
}
