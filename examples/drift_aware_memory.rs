//! Drift-aware memory experiment: isolate a drifted qubit via code
//! deformation and measure the logical error rate before/after, with full
//! stabilizer simulation and union-find decoding.
//!
//! ```text
//! cargo run --release --example drift_aware_memory
//! ```
//!
//! This is the paper's central mechanism in miniature (its Fig. 13): a
//! single badly drifted physical qubit inflates the logical error rate; the
//! `DataQ_RM` instruction isolates it behind a temporary boundary and
//! `PatchQ_AD` enlargement restores the code distance, recovering most of
//! the loss — all without touching the encoded state.

use caliqec_code::{
    code_distance, data_coord, memory_circuit, DeformInstruction, DeformedPatch, Lattice,
    MemoryBasis, NoiseModel, Side,
};
use caliqec_match::{estimate_ler, graph_for_circuit, SampleOptions, UnionFindDecoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn measure(layout: &caliqec_code::PatchLayout, noise: &NoiseModel, rng: &mut StdRng) -> f64 {
    let mem = memory_circuit(layout, noise, 3, MemoryBasis::Z);
    let mut decoder = UnionFindDecoder::new(graph_for_circuit(&mem.circuit));
    estimate_ler(
        &mem.circuit,
        &mut decoder,
        SampleOptions {
            min_shots: 200_000,
            max_failures: 400,
            max_shots: 800_000,
        },
        rng,
    )
    .per_shot()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let d = 3;
    let p0 = 2e-3;
    let drifted = data_coord(1, 1); // the central data qubit has drifted
    let p_drifted = p0 * 8.0;

    // Healthy patch.
    let pristine = DeformedPatch::new(Lattice::Square, d, d)
        .layout()
        .expect("pristine patch");
    let baseline = measure(&pristine, &NoiseModel::uniform(p0), &mut rng);
    println!("baseline LER (all gates at p0 = {p0:.0e}):        {baseline:.3e}");

    // Same patch with the drifted qubit left in place.
    let mut drifted_noise = NoiseModel::uniform(p0);
    drifted_noise.drift_qubit(drifted, p_drifted);
    let hurt = measure(&pristine, &drifted_noise, &mut rng);
    println!(
        "with one qubit drifted to {p_drifted:.0e}:            {hurt:.3e}  ({:+.0}%)",
        (hurt / baseline - 1.0) * 100.0
    );

    // Isolate the drifted qubit and enlarge the patch back to distance d.
    let mut patch = DeformedPatch::new(Lattice::Square, d, d);
    patch
        .apply(DeformInstruction::DataQRm { qubit: drifted })
        .expect("isolation applies");
    for side in [Side::Right, Side::Bottom, Side::Right, Side::Bottom] {
        if code_distance(&patch.layout().expect("valid")).min() >= d {
            break;
        }
        patch
            .apply(DeformInstruction::PatchQAd { side })
            .expect("enlargement applies");
    }
    let healed_layout = patch.layout().expect("valid");
    println!(
        "deformed layout: {} data qubits, {} superstabilizers, distance {}",
        healed_layout.data.len(),
        healed_layout.num_superstabilizers(),
        code_distance(&healed_layout).min()
    );
    // The isolated qubit is being calibrated, so its drift disappears from
    // the circuit; the remaining gates run at p0.
    let healed = measure(&healed_layout, &NoiseModel::uniform(p0), &mut rng);
    println!(
        "after DataQ_RM + PatchQ_AD (qubit calibrating):  {healed:.3e}  ({:+.0}% vs baseline)",
        (healed / baseline - 1.0) * 100.0
    );
    println!(
        "\nisolation recovered {:.0}% of the drift-induced LER increase",
        (1.0 - (healed - baseline).max(0.0) / (hurt - baseline)) * 100.0
    );
}
