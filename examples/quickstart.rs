//! Quickstart: the full CaliQEC pipeline on a synthetic device.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Build a synthetic superconducting device with drifting gates.
//! 2. **Preparation**: characterize drift rates / calibration times /
//!    crosstalk via simulated interleaved randomized benchmarking.
//! 3. **Compilation**: group gates by drift (Algorithm 1), batch them under
//!    the Δd budget, lower to deformation instructions.
//! 4. **Runtime**: execute 48 hours of in-situ calibration concurrently with
//!    computation and report the error/distance/qubit trace.

use caliqec::{compile, run_runtime, CaliqecConfig, Preparation};
use caliqec_device::{DeviceConfig, DeviceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A 7x7 grid device protecting one distance-7 logical patch.
    let device = DeviceModel::synthetic(
        &DeviceConfig {
            rows: 7,
            cols: 7,
            ..DeviceConfig::default()
        },
        &mut rng,
    );
    let config = CaliqecConfig {
        distance: 7,
        ..CaliqecConfig::default()
    };
    println!(
        "device: {} qubits, {} calibratable gates",
        device.num_qubits,
        device.gates.len()
    );

    // Preparation: estimate every gate's drift model.
    let preparation = Preparation::run(&device, &mut rng);
    let worst = preparation
        .characterization
        .iter()
        .min_by(|a, b| {
            a.estimated
                .t_drift_hours
                .partial_cmp(&b.estimated.t_drift_hours)
                .unwrap()
        })
        .expect("gates characterized");
    println!(
        "fastest drifter: gate {} (T_drift ~ {:.1} h)",
        worst.gate, worst.estimated.t_drift_hours
    );

    // Compilation: grouping + batching + instruction lowering.
    let plan = compile(&device, &preparation, &config, &mut rng);
    println!(
        "plan: T_Cali = {:.2} h, {} calibration groups, {} ops over 48 h",
        plan.t_cali_hours(),
        plan.groups.groups.len(),
        plan.operations_over(48.0)
    );

    // Runtime: 48 hours of concurrent computation + calibration.
    let report = run_runtime(&device, Some(&plan), &config, 48.0, 96);
    let uncal = run_runtime(&device, None, &config, 48.0, 96);
    println!(
        "48h with CaliQEC:   {} calibrations, peak LER {:.2e}, {:.1}% of time above target",
        report.calibrations,
        report.peak_ler(),
        report.exceedance_fraction() * 100.0
    );
    println!(
        "48h without:        peak LER {:.2e}, {:.1}% of time above target",
        uncal.peak_ler(),
        uncal.exceedance_fraction() * 100.0
    );
    println!(
        "peak physical qubits during calibration: {} (pristine patch: {})",
        report.max_physical_qubits,
        report.trace.first().map(|p| p.physical_qubits).unwrap_or(0)
    );
}
