//! Resource planning for long-running quantum-chemistry programs: which
//! calibration policy makes a multi-day FeMoCo / Hubbard run feasible?
//!
//! ```text
//! cargo run --release --example chemistry_resource_planning
//! ```
//!
//! The workloads the paper's introduction motivates (nitrogen fixation via
//! FeMoCo, high-Tc superconductivity via the Hubbard model) run for hours to
//! days — far beyond the drift time of today's qubits. This example sizes
//! the machine (distance and physical qubits) for each policy and reports
//! the drift-integrated retry risk.

use caliqec_ftqc::{evaluate, BenchProgram, EvalConfig, Policy};
use caliqec_sched::distance_for;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let programs = [
        BenchProgram::hubbard(10, 10),
        BenchProgram::jellium(250),
        BenchProgram::femoco(),
    ];
    let config = EvalConfig::default();

    println!(
        "{:<14} {:>4} {:>16} {:>20} {:>12} {:>10}",
        "program", "d", "policy", "physical qubits", "exec (h)", "retry"
    );
    for program in &programs {
        // Size the distance so a sustained run at p ~ 2e-3 meets the target.
        let per_op = config.retry_target / program.logical_ops();
        let d = distance_for(2e-3, per_op).unwrap_or(31);
        for policy in [
            Policy::NoCalibration,
            Policy::Lsc,
            Policy::Qecali { delta_d: 4 },
        ] {
            let r = evaluate(program, d, policy, &config, &mut rng);
            println!(
                "{:<14} {:>4} {:>16} {:>20} {:>12.1} {:>9.2}%",
                program.name,
                d,
                format!("{policy:?}"),
                r.physical_qubits,
                r.exec_hours,
                r.retry_risk * 100.0
            );
        }
        println!();
    }
    println!("QECali keeps the retry risk at the LSC level (or better) while");
    println!("using a fraction of its qubits and adding no execution time —");
    println!("the only policy that makes these runs deployable.");
}
