//! Lattice surgery: fault-tolerantly measure `Z⊗Z` between two patches.
//!
//! ```text
//! cargo run --release --example lattice_surgery
//! ```
//!
//! This is the logical-operation substrate of surface-code FTQC (paper
//! Fig. 3e/f): two patches merge across a routing channel, jointly stabilize
//! for `d` rounds, and split again. The conserved merged logical is decoded
//! and its residual flip rate — the logical error rate of the surgery
//! operation itself — is measured at two distances to show fault tolerance.

use caliqec_code::{zz_surgery_circuit, NoiseModel, ZzSurgery};
use caliqec_match::{estimate_ler, graph_for_circuit, SampleOptions, UnionFindDecoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn surgery_ler(d: usize, p: f64, shots: usize, seed: u64) -> f64 {
    let surgery = zz_surgery_circuit(
        &ZzSurgery {
            d,
            pre_rounds: d,
            merge_rounds: d,
            post_rounds: d,
        },
        &NoiseModel::uniform(p),
    );
    let mut decoder = UnionFindDecoder::new(graph_for_circuit(&surgery.circuit));
    let mut rng = StdRng::seed_from_u64(seed);
    estimate_ler(
        &surgery.circuit,
        &mut decoder,
        SampleOptions {
            min_shots: shots,
            ..Default::default()
        },
        &mut rng,
    )
    .per_shot()
}

fn main() {
    let p = 2e-3;
    println!("ZZ lattice surgery under p = {p:.0e} circuit-level noise\n");
    let d3 = surgery_ler(3, p, 120_000, 1);
    println!("d = 3: surgery logical error rate {d3:.3e}");
    let d5 = surgery_ler(5, p, 120_000, 2);
    println!("d = 5: surgery logical error rate {d5:.3e}");
    println!(
        "\nsuppression factor d=3 → d=5: {:.1}x (fault tolerance of the merge/split)",
        d3 / d5.max(1e-9)
    );
    println!("\nThe decoded observable is the conserved merged logical Z̄_M — the");
    println!("individual patch readouts are gauge during the merge, exactly as in");
    println!("the code-deformation theory CaliQEC builds on (paper Sec. 2.2).");
}
