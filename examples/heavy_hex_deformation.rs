//! Walkthrough of the heavy-hexagon instruction set (paper Sec. 6.1).
//!
//! ```text
//! cargo run --release --example heavy_hex_deformation
//! ```
//!
//! IBM-style devices read each stabilizer out through an "S"-shaped bridge
//! of seven ancillas. Removing different bridge nodes has different
//! structural consequences — this example applies each `AncQ_RM_*`
//! instruction to a d = 5 heavy-hex patch and prints what happened to the
//! stabilizer group.

use caliqec_code::{
    code_distance, heavy_hex_patch, DeformInstruction, DeformedPatch, Lattice, Readout, StabKind,
};

fn describe(label: &str, patch: &DeformedPatch) {
    let layout = patch.layout().expect("valid layout");
    let split = layout
        .stabilizers
        .iter()
        .filter(|s| matches!(&s.readout, Readout::Chain { parts } if parts.len() > 1))
        .count();
    println!(
        "{label:<18} data={:<3} stabs={:<3} superstabs={:<2} split-gauge={:<2} distance={}",
        layout.data.len(),
        layout.stabilizers.len(),
        layout.num_superstabilizers(),
        split,
        code_distance(&layout).min(),
    );
}

fn main() {
    let pristine = heavy_hex_patch(5, 5);
    println!(
        "pristine d=5 heavy-hex patch: {} data qubits, {} bridge ancillas\n",
        pristine.data.len(),
        pristine.ancillas().len()
    );

    // Locate an interior X stabilizer's bridge.
    let stab = pristine
        .stabilizers
        .iter()
        .find(|s| s.weight() == 4 && s.kind == StabKind::X)
        .expect("interior X stabilizer");
    let Readout::Chain { parts } = &stab.readout else {
        unreachable!("heavy-hex readouts are chains")
    };
    let chain = &parts[0].chain;
    println!("target bridge (7 ancillas): {:?}", chain);
    println!("  attach nodes (paper qa,qc,qe,qg): indices 0, 2, 4, 6");
    println!("  outer bridges (paper qb,qf):      indices 1, 5");
    println!("  mid bridge (paper qd):            index 3\n");

    // AncQ_RM_HorDeg2: remove the mid bridge -> two weight-2 gauge halves.
    let mut patch = DeformedPatch::new(Lattice::HeavyHex, 5, 5);
    describe("pristine", &patch);
    patch
        .apply(DeformInstruction::AncQRmHorDeg2 { ancilla: chain[3] })
        .expect("HorDeg2 applies");
    describe("AncQ_RM_HorDeg2", &patch);
    patch.reintegrate_all();

    // AncQ_RM_VerDeg2: remove an outer bridge -> a singleton gauge pins its
    // data qubit out of the code.
    patch
        .apply(DeformInstruction::AncQRmVerDeg2 { ancilla: chain[1] })
        .expect("VerDeg2 applies");
    describe("AncQ_RM_VerDeg2", &patch);
    patch.reintegrate_all();

    // AncQ_RM_Deg3: remove an attach node -> the attached data qubit becomes
    // a gauge qubit and leaves the code.
    patch
        .apply(DeformInstruction::AncQRmDeg3 { ancilla: chain[0] })
        .expect("Deg3 applies");
    describe("AncQ_RM_Deg3", &patch);
    patch.reintegrate_all();
    describe("reintegrated", &patch);

    println!("\nreintegration restores the pristine stabilizer group exactly.");
}
