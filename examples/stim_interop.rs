//! Export a CaliQEC-generated circuit in Stim's text format (and read it
//! back), for cross-validation against the paper's original toolchain.
//!
//! ```text
//! cargo run --release --example stim_interop > memory_d3.stim
//! ```
//!
//! The emitted file is directly loadable by Stim
//! (`stim.Circuit(open("memory_d3.stim").read())`), so the logical error
//! rates measured by this crate's sampler/decoder can be checked against
//! Stim + PyMatching on the *same* circuit.

use caliqec_code::{memory_circuit, rotated_patch, MemoryBasis, NoiseModel};
use caliqec_stab::{from_stim_text, to_stim_text};

fn main() {
    let mem = memory_circuit(
        &rotated_patch(3, 3),
        &NoiseModel::uniform(1e-3),
        3,
        MemoryBasis::Z,
    );
    let text = to_stim_text(&mem.circuit);

    // Round-trip through the parser to prove the export is lossless.
    let parsed = from_stim_text(&text).expect("own output parses");
    assert_eq!(parsed.ops(), mem.circuit.ops());
    assert_eq!(parsed.num_detectors(), mem.circuit.num_detectors());

    eprintln!(
        "d=3 memory-Z: {} qubits, {} ops, {} detectors, {} observables (round-trip verified)",
        mem.circuit.num_qubits(),
        mem.circuit.ops().len(),
        mem.circuit.num_detectors(),
        mem.circuit.num_observables(),
    );
    print!("{text}");
}
